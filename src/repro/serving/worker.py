"""Shard-worker process internals.

One shard = one single-worker :class:`~concurrent.futures.ProcessPoolExecutor`
whose process is initialized once with the (pickle-shipped) point set
and serving configuration — the same ``initargs`` pattern as
:mod:`repro.perf.parallel` — and then serves batched sub-workloads.
Each worker builds a full :class:`~repro.engine.SpatialEngine` replica
over the points; the quadtree partition is a pure function of the
points and capacity, so a worker's ``execute_batch`` output is
bit-identical to the coordinator's unsharded engine.

Deadline propagation: every chunk message carries the coordinator's
*remaining* time budget, and the worker calls
:func:`~repro.resilience.fallback.budget_check` between serving slices
— a blown deadline surfaces as a typed
:class:`~repro.resilience.errors.BudgetExceededError` mid-chunk instead
of the worker obliviously finishing work nobody is waiting for.

Fault injection: the initializer also receives a
:class:`~repro.resilience.faultinject.WorkerFaultPlan` plus this
process's incarnation number; the plan is applied at the top of every
batch, which is how the chaos suite kills, hangs, or slows a worker on
a chosen batch deterministically.
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry.backends import set_backend
from repro.resilience.fallback import budget_check
from repro.resilience.faultinject import WorkerFaultPlan

#: Queries per cooperative budget checkpoint inside one chunk.
BUDGET_SLICE = 256

#: Relation name shard replicas register their table under.
SHARD_TABLE = "__shard__"

_WORKER_STATE: dict = {}


def _init_shard_worker(
    shard_id: int,
    incarnation: int,
    points: np.ndarray,
    capacity: int,
    manager_kwargs: dict,
    fault_plan: WorkerFaultPlan | None,
    backend: str = "numpy",
) -> None:
    """Pool initializer: build the shard's engine replica once.

    Runs in the worker process.  The engine (and therefore any catalog
    the statistics manager builds lazily) lives for the process's whole
    incarnation, so repeated chunks amortize the build exactly like a
    long-lived serving process would.  The coordinator ships its kernel
    backend name so replicas compute with the same backend (results are
    bit-identical either way; ``set_backend`` silently degrades to
    numpy where the compiled backend is unavailable).
    """
    from repro.engine import SpatialEngine, SpatialTable, StatisticsManager

    set_backend(backend)
    engine = SpatialEngine(StatisticsManager(**manager_kwargs))
    engine.register(SpatialTable(SHARD_TABLE, points, capacity=capacity))
    _WORKER_STATE.clear()
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["shard_id"] = int(shard_id)
    _WORKER_STATE["incarnation"] = int(incarnation)
    _WORKER_STATE["fault_plan"] = fault_plan
    _WORKER_STATE["batches_served"] = 0
    _WORKER_STATE["payload_bytes"] = int(np.asarray(points).nbytes)


def _serve_shard_chunk(payload: dict) -> tuple[list, list]:
    """Serve one chunk of queries inside the worker process.

    Args:
        payload: ``{"points": (m, 2) focal coords, "ks": (m,) ints,
            "budget_seconds": float | None}``.

    Returns:
        ``(results, explanations)`` in chunk order —
        :class:`~repro.engine.ExecutionResult` and
        :class:`~repro.engine.PlanExplanation` objects (both pickle
        back to the coordinator).

    Raises:
        BudgetExceededError: When the propagated deadline expires
            between serving slices.
    """
    from repro.engine.queries import KnnSelectQuery
    from repro.geometry import Point

    engine = _WORKER_STATE["engine"]
    fault_plan = _WORKER_STATE["fault_plan"]
    batch_index = _WORKER_STATE["batches_served"]
    _WORKER_STATE["batches_served"] = batch_index + 1
    if fault_plan is not None:
        fault_plan.apply(
            _WORKER_STATE["shard_id"], batch_index, _WORKER_STATE["incarnation"]
        )
    pts = np.asarray(payload["points"], dtype=float).reshape(-1, 2)
    ks = np.asarray(payload["ks"], dtype=np.int64).reshape(-1)
    budget = payload.get("budget_seconds")
    start = time.perf_counter()
    results: list = []
    explanations: list = []
    for lo in range(0, pts.shape[0], BUDGET_SLICE):
        budget_check(start, budget, "shard serving")
        queries = [
            KnnSelectQuery(
                SHARD_TABLE,
                Point(float(pts[i, 0]), float(pts[i, 1])),
                k=int(ks[i]),
            )
            for i in range(lo, min(lo + BUDGET_SLICE, pts.shape[0]))
        ]
        for result, explanation in engine.execute_batch(queries):
            results.append(result)
            explanations.append(explanation)
    return results, explanations


def _init_data_shard_worker(
    shard_id: int,
    incarnation: int,
    payload: dict,
    fault_plan: WorkerFaultPlan | None,
    backend: str = "numpy",
) -> None:
    """Pool initializer for a *data* shard: only this shard's blocks.

    ``payload`` carries the shard's canonical sub-snapshot (global
    block ids preserved), the member blocks' global row ids and points
    concatenated in canonical block order, and each row's position in
    the *global* block-order concatenation (``gpos`` — the unsharded
    full scan's tie-break key).  A local statistics manager over the
    shard's own points answers the estimate round; the coordinator
    sums costs and worst-cases tiers across shards.
    """
    from repro.engine import SpatialTable, StatisticsManager

    set_backend(backend)
    snapshot = payload["snapshot"]
    rows = np.asarray(payload["rows"], dtype=np.int64)
    points = np.asarray(payload["points"], dtype=float).reshape(-1, 2)
    gpos = np.asarray(payload["gpos"], dtype=np.int64)
    starts = np.zeros(snapshot.n_blocks + 1, dtype=np.int64)
    np.cumsum(snapshot.counts, out=starts[1:])
    stats = None
    if points.shape[0]:
        stats = StatisticsManager(**payload.get("manager_kwargs", {}))
        stats.register(
            SpatialTable(SHARD_TABLE, points, capacity=int(payload["capacity"]))
        )
    _WORKER_STATE.clear()
    _WORKER_STATE["snapshot"] = snapshot
    _WORKER_STATE["rows"] = rows
    _WORKER_STATE["points"] = points
    _WORKER_STATE["gpos"] = gpos
    _WORKER_STATE["starts"] = starts
    _WORKER_STATE["stats"] = stats
    _WORKER_STATE["shard_id"] = int(shard_id)
    _WORKER_STATE["incarnation"] = int(incarnation)
    _WORKER_STATE["fault_plan"] = fault_plan
    _WORKER_STATE["batches_served"] = 0
    _WORKER_STATE["payload_bytes"] = int(
        snapshot.rects.nbytes
        + snapshot.counts.nbytes
        + snapshot.centers.nbytes
        + snapshot.block_ids.nbytes
        + rows.nbytes
        + points.nbytes
        + gpos.nbytes
    )


def _stream_entries(stream, query_point, raw_entries) -> list:
    """Wire-format stream entries: attach each block's rows + distances.

    ``(mindist, global block id, scalar threshold, row_ids, dists)``
    per entry — the distances are computed here, in the worker, over
    the block's rows in canonical order, so the coordinator's merge
    concatenation reproduces the unsharded browser's gather
    bit-for-bit.
    """
    rows = _WORKER_STATE["rows"]
    points = _WORKER_STATE["points"]
    starts = _WORKER_STATE["starts"]
    out = []
    for mindist, block_id, threshold, local_row in raw_entries:
        lo, hi = int(starts[local_row]), int(starts[local_row + 1])
        block_pts = points[lo:hi]
        dists = np.hypot(
            block_pts[:, 0] - query_point.x, block_pts[:, 1] - query_point.y
        )
        out.append((mindist, block_id, threshold, rows[lo:hi], dists))
    return out


def _serve_data_shard_chunk(payload: dict) -> dict:
    """Serve one round of the cross-shard merge protocol.

    Three round kinds (``payload["round"]``):

    * ``"open"`` — per query, the first ``k``-point prefix of the
      shard's MINDIST-ordered block stream plus its resume bound, and
      the local select-cost estimates for the coordinator's merged
      :class:`~repro.engine.PlanExplanation`;
    * ``"resume"`` — continue named queries' streams from their
      cursors until ``min_points`` are gathered or ``min_mindist`` is
      reached;
    * ``"scan"`` — the shard's full-scan local top-k with global
      tie-break keys, for queries whose plan chose the filter operator.

    Rounds are stateless in the worker (streams are rebuilt from the
    cursor), so a respawned incarnation resumes transparently and
    retries are idempotent.  The fault plan fires per *round* —
    ``batches_served`` counts rounds — which is how the chaos suite
    kills a data shard mid-stream.
    """
    from repro.geometry import Point
    from repro.knn.distance_browsing import SnapshotBlockStream

    fault_plan = _WORKER_STATE["fault_plan"]
    batch_index = _WORKER_STATE["batches_served"]
    _WORKER_STATE["batches_served"] = batch_index + 1
    if fault_plan is not None:
        fault_plan.apply(
            _WORKER_STATE["shard_id"], batch_index, _WORKER_STATE["incarnation"]
        )
    snapshot = _WORKER_STATE["snapshot"]
    round_kind = payload["round"]
    pts = np.asarray(payload["points"], dtype=float).reshape(-1, 2)
    ks = np.asarray(payload["ks"], dtype=np.int64).reshape(-1)
    budget = payload.get("budget_seconds")
    start = time.perf_counter()
    if round_kind == "open":
        streams = []
        for i in range(pts.shape[0]):
            if i % BUDGET_SLICE == 0:
                budget_check(start, budget, "shard stream open")
            point = Point(float(pts[i, 0]), float(pts[i, 1]))
            stream = SnapshotBlockStream(snapshot, point)
            entries, cursor = stream.take(0, min_points=int(ks[i]))
            streams.append(
                (_stream_entries(stream, point, entries), cursor, stream.bound(cursor))
            )
        stats = _WORKER_STATE["stats"]
        if stats is None:
            estimates = (
                [0.0] * pts.shape[0],
                [""] * pts.shape[0],
                [False] * pts.shape[0],
            )
        else:
            costs, tiers, degraded = stats.estimate_select_provenance(
                SHARD_TABLE, pts, ks
            )
            estimates = ([float(c) for c in costs], tiers, degraded)
        return {"streams": streams, "estimates": estimates}
    if round_kind == "resume":
        cursors = np.asarray(payload["cursors"], dtype=np.int64).reshape(-1)
        min_points = np.asarray(payload["min_points"], dtype=np.int64).reshape(-1)
        min_mindists = np.asarray(payload["min_mindists"], dtype=float).reshape(-1)
        streams = []
        for i in range(pts.shape[0]):
            if i % BUDGET_SLICE == 0:
                budget_check(start, budget, "shard stream resume")
            point = Point(float(pts[i, 0]), float(pts[i, 1]))
            stream = SnapshotBlockStream(snapshot, point)
            entries, cursor = stream.take(
                int(cursors[i]),
                min_points=int(min_points[i]),
                min_mindist=float(min_mindists[i]),
            )
            streams.append(
                (_stream_entries(stream, point, entries), cursor, stream.bound(cursor))
            )
        return {"streams": streams}
    if round_kind == "scan":
        rows = _WORKER_STATE["rows"]
        points = _WORKER_STATE["points"]
        gpos = _WORKER_STATE["gpos"]
        topk = []
        for i in range(pts.shape[0]):
            if i % BUDGET_SLICE == 0:
                budget_check(start, budget, "shard full scan")
            if points.shape[0] == 0:
                empty = np.empty(0, dtype=np.int64)
                topk.append((empty, np.empty(0, dtype=float), empty))
                continue
            dists = np.hypot(points[:, 0] - pts[i, 0], points[:, 1] - pts[i, 1])
            order = np.lexsort((gpos, dists))[: int(ks[i])]
            topk.append((rows[order], dists[order], gpos[order]))
        return {"topk": topk}
    raise ValueError(f"unknown data-shard round {round_kind!r}")


def _worker_ping() -> tuple[int, int]:
    """Liveness probe used by eager tier spawn: ``(shard, incarnation)``."""
    return _WORKER_STATE.get("shard_id", -1), _WORKER_STATE.get("incarnation", -1)


def _worker_stats() -> dict:
    """Worker-side memory telemetry for the benchmark's RSS recording."""
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "shard_id": _WORKER_STATE.get("shard_id", -1),
        "incarnation": _WORKER_STATE.get("incarnation", -1),
        "payload_bytes": _WORKER_STATE.get("payload_bytes", 0),
        "ru_maxrss_kb": int(usage.ru_maxrss),
    }
