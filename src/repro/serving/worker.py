"""Shard-worker process internals.

One shard = one single-worker :class:`~concurrent.futures.ProcessPoolExecutor`
whose process is initialized once with the (pickle-shipped) point set
and serving configuration — the same ``initargs`` pattern as
:mod:`repro.perf.parallel` — and then serves batched sub-workloads.
Each worker builds a full :class:`~repro.engine.SpatialEngine` replica
over the points; the quadtree partition is a pure function of the
points and capacity, so a worker's ``execute_batch`` output is
bit-identical to the coordinator's unsharded engine.

Deadline propagation: every chunk message carries the coordinator's
*remaining* time budget, and the worker calls
:func:`~repro.resilience.fallback.budget_check` between serving slices
— a blown deadline surfaces as a typed
:class:`~repro.resilience.errors.BudgetExceededError` mid-chunk instead
of the worker obliviously finishing work nobody is waiting for.

Fault injection: the initializer also receives a
:class:`~repro.resilience.faultinject.WorkerFaultPlan` plus this
process's incarnation number; the plan is applied at the top of every
batch, which is how the chaos suite kills, hangs, or slows a worker on
a chosen batch deterministically.
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry.backends import set_backend
from repro.resilience.fallback import budget_check
from repro.resilience.faultinject import WorkerFaultPlan

#: Queries per cooperative budget checkpoint inside one chunk.
BUDGET_SLICE = 256

#: Relation name shard replicas register their table under.
SHARD_TABLE = "__shard__"

_WORKER_STATE: dict = {}


def _init_shard_worker(
    shard_id: int,
    incarnation: int,
    points: np.ndarray,
    capacity: int,
    manager_kwargs: dict,
    fault_plan: WorkerFaultPlan | None,
    backend: str = "numpy",
) -> None:
    """Pool initializer: build the shard's engine replica once.

    Runs in the worker process.  The engine (and therefore any catalog
    the statistics manager builds lazily) lives for the process's whole
    incarnation, so repeated chunks amortize the build exactly like a
    long-lived serving process would.  The coordinator ships its kernel
    backend name so replicas compute with the same backend (results are
    bit-identical either way; ``set_backend`` silently degrades to
    numpy where the compiled backend is unavailable).
    """
    from repro.engine import SpatialEngine, SpatialTable, StatisticsManager

    set_backend(backend)
    engine = SpatialEngine(StatisticsManager(**manager_kwargs))
    engine.register(SpatialTable(SHARD_TABLE, points, capacity=capacity))
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["shard_id"] = int(shard_id)
    _WORKER_STATE["incarnation"] = int(incarnation)
    _WORKER_STATE["fault_plan"] = fault_plan
    _WORKER_STATE["batches_served"] = 0


def _serve_shard_chunk(payload: dict) -> tuple[list, list]:
    """Serve one chunk of queries inside the worker process.

    Args:
        payload: ``{"points": (m, 2) focal coords, "ks": (m,) ints,
            "budget_seconds": float | None}``.

    Returns:
        ``(results, explanations)`` in chunk order —
        :class:`~repro.engine.ExecutionResult` and
        :class:`~repro.engine.PlanExplanation` objects (both pickle
        back to the coordinator).

    Raises:
        BudgetExceededError: When the propagated deadline expires
            between serving slices.
    """
    from repro.engine.queries import KnnSelectQuery
    from repro.geometry import Point

    engine = _WORKER_STATE["engine"]
    fault_plan = _WORKER_STATE["fault_plan"]
    batch_index = _WORKER_STATE["batches_served"]
    _WORKER_STATE["batches_served"] = batch_index + 1
    if fault_plan is not None:
        fault_plan.apply(
            _WORKER_STATE["shard_id"], batch_index, _WORKER_STATE["incarnation"]
        )
    pts = np.asarray(payload["points"], dtype=float).reshape(-1, 2)
    ks = np.asarray(payload["ks"], dtype=np.int64).reshape(-1)
    budget = payload.get("budget_seconds")
    start = time.perf_counter()
    results: list = []
    explanations: list = []
    for lo in range(0, pts.shape[0], BUDGET_SLICE):
        budget_check(start, budget, "shard serving")
        queries = [
            KnnSelectQuery(
                SHARD_TABLE,
                Point(float(pts[i, 0]), float(pts[i, 1])),
                k=int(ks[i]),
            )
            for i in range(lo, min(lo + BUDGET_SLICE, pts.shape[0]))
        ]
        for result, explanation in engine.execute_batch(queries):
            results.append(result)
            explanations.append(explanation)
    return results, explanations
