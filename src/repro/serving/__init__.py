"""The fault-tolerant sharded serving tier.

A supervised, process-sharded front end over the
:class:`~repro.engine.SpatialEngine`:

* :mod:`~repro.serving.shards` — the shard planner (count-balanced
  spatial partitioning of query space) and vectorized routing;
* :mod:`~repro.serving.worker` — the per-shard worker process: a full
  engine replica serving chunks under a propagated deadline;
* :mod:`~repro.serving.supervisor` — deadlines, bounded retries with
  backoff, worker respawn, and per-shard circuit breakers;
* :mod:`~repro.serving.admission` — queue-depth and time-budget load
  shedding via :class:`~repro.resilience.errors.OverloadError`;
* :mod:`~repro.serving.coordinator` — routing, fan-out, merge with
  per-shard provenance, and graceful degradation.

Entry points: :class:`ShardedServingTier` for long-lived serving,
:func:`serve_sharded` for one-shot runs, and
``serve_workload(..., mode="sharded")`` in :mod:`repro.workloads`.
"""

from repro.serving.admission import AdmissionController
from repro.serving.coordinator import (
    DEGRADED_PLAN,
    ShardedServingReport,
    ShardedServingTier,
    ShardReport,
    serve_sharded,
)
from repro.serving.shards import ShardPlan, plan_shards
from repro.serving.supervisor import (
    Deadline,
    ShardSupervisor,
    ShardUnavailable,
    ShardWorkerHandle,
    SupervisionPolicy,
)

__all__ = [
    "AdmissionController",
    "DEGRADED_PLAN",
    "Deadline",
    "ShardPlan",
    "ShardReport",
    "ShardSupervisor",
    "ShardUnavailable",
    "ShardWorkerHandle",
    "ShardedServingReport",
    "ShardedServingTier",
    "SupervisionPolicy",
    "plan_shards",
    "serve_sharded",
]
