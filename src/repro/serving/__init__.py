"""The fault-tolerant sharded serving tier.

A supervised, process-sharded front end over the
:class:`~repro.engine.SpatialEngine`:

* :mod:`~repro.serving.shards` — the shard planner (count-balanced
  spatial partitioning of query space), vectorized routing, and the
  block-level data partitioner for true data shards;
* :mod:`~repro.serving.worker` — the per-shard worker process: either a
  full engine replica serving chunks under a propagated deadline
  (``shard_mode="replica"``) or a data shard streaming MINDIST-ordered
  blocks to the coordinator (``shard_mode="data"``);
* :mod:`~repro.serving.merge` — the coordinator-side streaming k-NN
  merge over per-shard block streams, with coverage-gap (``partial``)
  accounting when a data shard dies mid-query;
* :mod:`~repro.serving.supervisor` — deadlines, bounded retries with
  backoff, worker respawn, and per-shard circuit breakers;
* :mod:`~repro.serving.admission` — queue-depth and time-budget load
  shedding via :class:`~repro.resilience.errors.OverloadError`;
* :mod:`~repro.serving.coordinator` — routing, fan-out, merge with
  per-shard provenance, and graceful degradation.

Entry points: :class:`ShardedServingTier` for long-lived serving,
:func:`serve_sharded` for one-shot runs, and
``serve_workload(..., mode="sharded")`` in :mod:`repro.workloads`.
"""

from repro.serving.admission import AdmissionController
from repro.serving.coordinator import (
    DEGRADED_PLAN,
    ServeManyReport,
    ShardedServingReport,
    ShardedServingTier,
    ShardReport,
    serve_sharded,
)
from repro.serving.merge import PARTIAL_PLAN, QueryMerge, merge_filter_topk
from repro.serving.shards import ShardPlan, partition_blocks, plan_shards
from repro.serving.supervisor import (
    Deadline,
    ShardSupervisor,
    ShardUnavailable,
    ShardWorkerHandle,
    SupervisionPolicy,
)

__all__ = [
    "AdmissionController",
    "DEGRADED_PLAN",
    "Deadline",
    "PARTIAL_PLAN",
    "QueryMerge",
    "ServeManyReport",
    "ShardPlan",
    "ShardReport",
    "ShardSupervisor",
    "ShardUnavailable",
    "ShardWorkerHandle",
    "ShardedServingReport",
    "ShardedServingTier",
    "SupervisionPolicy",
    "merge_filter_topk",
    "partition_blocks",
    "plan_shards",
    "serve_sharded",
]
