"""The sharded serving coordinator: route, fan out, merge, degrade.

:class:`ShardedServingTier` is the front door of the serving
subsystem.  Per batch it:

1. asks the :class:`~repro.serving.admission.AdmissionController` (if
   configured) for admission under the batch's deadline;
2. routes every query to its spatial shard via the
   :class:`~repro.serving.shards.ShardPlan`;
3. fans the per-shard sub-workloads out to supervised worker processes
   in ``chunk_size`` chunks (one coordinator thread per shard stream),
   each chunk served under the
   :class:`~repro.serving.supervisor.ShardSupervisor`'s
   deadline/retry/respawn/breaker contract;
4. merges the per-shard answers back into workload order with
   per-shard provenance (:class:`ShardReport`);
5. degrades instead of failing: queries whose shard stayed unavailable
   are answered by the coordinator's *local* uniform-model fallback —
   an estimate-only answer clamped to the guaranteed bound (the
   relation's block count), flagged ``degraded=True`` with
   ``results[i] is None`` — unless ``strict`` serving was requested, in
   which case a :class:`~repro.resilience.errors.ShardExhaustedError`
   is raised.

The tier runs in one of two **shard modes**:

* ``"replica"`` (the default) — every worker holds a full replica of
  the point set; queries route to their spatial shard and come back
  whole.  Because the quadtree partition is a pure function of
  (points, capacity), every *non-degraded* answer is bit-identical to
  an unsharded :class:`~repro.engine.SpatialEngine`.
* ``"data"`` — the relation is *partitioned*: each worker holds only
  its shard's index blocks and rows (memory ∝ n/shards), and every
  query fans out to all shards, answered by the streaming cross-shard
  merge of :mod:`repro.serving.merge`.  Answers are still bit-identical
  to the unsharded engine — the merge replays the exact global block
  admission — but a dead shard is now a *coverage gap*: affected
  queries degrade to an explicit ``partial`` outcome (a verified
  prefix of the true answer, clamped by the surviving shards' bounds)
  instead of replica mode's estimate-only fallback.

The tier is **long-lived**: :meth:`~ShardedServingTier.start` spawns
every worker pool eagerly, :meth:`~ShardedServingTier.serve_many`
pipelines multiple in-flight batches through the same pools with
per-query latency accounting, and ``pools_spawned`` proves the spawn
cost was paid exactly once across a sustained workload.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.engine.physical import (
    ExecutionResult,
    FilterThenKnnOperator,
    IncrementalKnnOperator,
    RegionPrunedKnnOperator,
)
from repro.engine.planner import PlanExplanation, _estimator_tiers, _run_chain
from repro.engine.queries import KnnSelectQuery
from repro.engine.stats import StatisticsManager
from repro.engine.table import SpatialTable
from repro.estimators.uniform_model import UniformModelEstimator
from repro.geometry import Point, Rect, mindist_point_rect
from repro.geometry.backends import active_backend
from repro.geometry.hilbert import hilbert_order
from repro.index.snapshot import as_snapshot
from repro.optimizer.selection import PlanningContext
from repro.serving.merge import (
    PARTIAL_PLAN,
    QueryMerge,
    merge_filter_topk,
    merge_select_estimates,
)
from repro.serving.worker import (
    SHARD_TABLE,
    _serve_data_shard_chunk,
    _worker_stats,
)
from repro.resilience.errors import OverloadError, ShardExhaustedError
from repro.resilience.faultinject import WorkerFaultPlan
from repro.serving.admission import AdmissionController
from repro.serving.shards import ShardPlan, partition_blocks, plan_shards
from repro.serving.supervisor import (
    Deadline,
    ShardSupervisor,
    ShardUnavailable,
    ShardWorkerHandle,
    SupervisionPolicy,
)
from repro.workloads.queries import QueryBatch
from repro.workloads.serving import ServingReport

#: Plan label for degraded, estimate-only answers.
DEGRADED_PLAN = "degraded-estimate-only"

#: Sentinel distinguishing "use the tier default" from an explicit None.
_UNSET = object()


@dataclass(frozen=True)
class ShardReport:
    """Per-shard provenance for one served batch.

    Attributes:
        shard_id: The shard.
        n_queries: Queries routed to it this batch.
        n_chunks: Chunks its stream(s) submitted.
        attempts: Worker submissions (includes retries).
        retries: Re-submissions after a failed attempt.
        respawns: Pool incarnations killed and replaced (crash or hang).
        timeouts: Attempts abandoned on the future timeout.
        failures: Failed attempts of any kind.
        degraded_queries: Queries this shard could not answer (served by
            the coordinator's local fallback instead).
        circuit_open: Whether the shard's breaker was open when the
            batch finished.
    """

    shard_id: int
    n_queries: int
    n_chunks: int
    attempts: int
    retries: int
    respawns: int
    timeouts: int
    failures: int
    degraded_queries: int
    circuit_open: bool

    def describe(self) -> str:
        """One line for the report summary."""
        bits = [
            f"shard {self.shard_id}: {self.n_queries} queries",
            f"{self.attempts} attempts",
        ]
        if self.retries:
            bits.append(f"{self.retries} retries")
        if self.respawns:
            bits.append(f"{self.respawns} respawns")
        if self.timeouts:
            bits.append(f"{self.timeouts} timeouts")
        if self.degraded_queries:
            bits.append(f"{self.degraded_queries} degraded")
        if self.circuit_open:
            bits.append("breaker OPEN")
        return ", ".join(bits)


@dataclass(frozen=True)
class ShardedServingReport(ServingReport):
    """A :class:`~repro.workloads.serving.ServingReport` with shard provenance.

    Attributes:
        shard_ids: ``(n,)`` shard each query was routed to (``-1`` in
            data-shard mode — every query fans out to all shards).
        degraded: ``(n,)`` bool mask of estimate-only answers (their
            ``results`` entry is ``None``).
        partial: ``(n,)`` bool mask of partial-coverage answers
            (data-shard mode only): the result holds a *verified
            prefix* of the true k-NN answer, clamped by the dead
            shards' bounds.
        shards: Per-shard :class:`ShardReport`, ascending by shard id.
        deadline_ms: The deadline the batch ran under (``None`` =
            unbounded).
        shard_mode: ``"replica"`` or ``"data"``.
    """

    shard_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    degraded: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    partial: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    shards: tuple[ShardReport, ...] = ()
    deadline_ms: float | None = None
    shard_mode: str = "replica"

    @property
    def n_degraded(self) -> int:
        """Queries answered by the coordinator's degraded fallback."""
        return int(np.count_nonzero(self.degraded))

    @property
    def n_partial(self) -> int:
        """Queries answered with a verified prefix (coverage gap)."""
        return int(np.count_nonzero(self.partial))

    def describe(self) -> str:
        """Multi-line summary: base report + shard and degradation lines."""
        lines = [super().describe()]
        lines.append(f"shard mode:  {self.shard_mode}")
        if self.deadline_ms is not None:
            lines.append(f"deadline:    {self.deadline_ms:.0f} ms")
        healthy = self.n_queries - self.n_degraded - self.n_partial
        lines.append(
            f"degraded:    {self.n_degraded} of {self.n_queries} queries "
            f"({self.n_partial} partial, {healthy} exact)"
        )
        for shard in self.shards:
            lines.append(f"  {shard.describe()}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ServeManyReport:
    """The outcome of one :meth:`ShardedServingTier.serve_many` run.

    Attributes:
        reports: Per-batch :class:`ShardedServingReport`, in submission
            order; ``None`` where admission refused the batch.
        n_batches: Batches submitted.
        n_overloaded: Batches refused at admission.
        seconds: Wall clock across the pipelined run.
        latencies_us: Per-query latencies concatenated across served
            batches, so the percentiles below reflect *queries*, not
            coordinator-side batch timing.
    """

    reports: tuple
    n_batches: int
    n_overloaded: int
    seconds: float
    latencies_us: np.ndarray

    @property
    def n_queries(self) -> int:
        """Queries actually served across all admitted batches."""
        return int(self.latencies_us.shape[0])

    @property
    def throughput_qps(self) -> float:
        """Served queries per second of wall clock."""
        return self.n_queries / self.seconds if self.seconds > 0 else 0.0

    def percentile_us(self, q: float) -> float:
        """A per-query latency percentile in microseconds."""
        if self.latencies_us.size == 0:
            return 0.0
        return float(np.percentile(self.latencies_us, q))

    def describe(self) -> str:
        """Multi-line sustained-run summary."""
        lines = [
            f"batches:     {self.n_batches} "
            f"({self.n_overloaded} refused at admission)",
            f"queries:     {self.n_queries}",
            f"wall clock:  {self.seconds:.3f} s "
            f"({self.throughput_qps:,.0f} q/s)",
        ]
        if self.latencies_us.size:
            lines.append(
                "latency:     "
                f"p50 {self.percentile_us(50):,.0f} us, "
                f"p95 {self.percentile_us(95):,.0f} us, "
                f"p99 {self.percentile_us(99):,.0f} us"
            )
        return "\n".join(lines)


class ShardedServingTier:
    """A supervised, sharded serving front end over one relation.

    Args:
        table: The relation to serve (replicated to every worker in
            replica mode; partitioned across workers in data mode).
        shard_mode: ``"replica"`` (full copy per worker, queries
            routed by region) or ``"data"`` (each worker holds only
            its shard's blocks, queries answered by the cross-shard
            streaming merge).
        n_shards: Spatial shards / worker pools.
        workers_per_shard: Processes per shard pool; each extra worker
            adds one concurrent chunk stream for that shard's traffic.
        chunk_size: Queries per worker submission (the retry and
            degradation granularity).
        deadline_ms: Default per-batch deadline (``None`` = unbounded);
            :meth:`serve` can override per batch.
        policy: Supervision knobs (retries, backoff, breaker, timeout).
        admission: Optional shared admission gate.
        worker_faults: Fault-injection plan shipped to every worker
            (chaos testing).
        strict: Raise :class:`ShardExhaustedError` instead of degrading.
        manager_kwargs: :class:`~repro.engine.StatisticsManager`
            configuration for the worker replicas.  Must match the
            reference engine's configuration for bit-identical answers;
            leave ``estimate_cache_size`` at 0 — a warm cache can flip
            plan choices and break the identity.
        pinned_operators: Forced per-table/per-kind operator choices
            for every worker replica's selection chain — plain
            picklable data (``{"table:kind" | "kind": operator}``),
            merged into ``manager_kwargs``.  The reference engine must
            be configured with the same pins or the bit-identity with
            unsharded planning breaks.

    The tier is a context manager; :meth:`close` terminates every
    worker pool.
    """

    def __init__(
        self,
        table: SpatialTable,
        *,
        shard_mode: str = "replica",
        n_shards: int = 4,
        workers_per_shard: int = 1,
        chunk_size: int = 1024,
        deadline_ms: float | None = None,
        policy: SupervisionPolicy | None = None,
        admission: AdmissionController | None = None,
        worker_faults: WorkerFaultPlan | None = None,
        strict: bool = False,
        manager_kwargs: dict | None = None,
        shard_plan: ShardPlan | None = None,
        pinned_operators: dict | None = None,
    ) -> None:
        if shard_mode not in ("replica", "data"):
            raise ValueError(f"unknown shard_mode {shard_mode!r}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if table.n_rows == 0:
            raise ValueError("cannot shard-serve an empty table")
        self.table = table
        self.shard_mode = shard_mode
        self.chunk_size = int(chunk_size)
        self.deadline_ms = deadline_ms
        self.strict = bool(strict)
        self.admission = admission
        self._workers_per_shard = int(workers_per_shard)
        snapshot = as_snapshot(table.index)
        # Routing (replica mode) and partitioning (data mode) are pure
        # load-balancing concerns: any ShardPlan over any substrate
        # yields the same answers.  A caller may therefore supply a
        # plan built from a different index (n_shards is then taken
        # from the plan).
        self.plan: ShardPlan = (
            shard_plan if shard_plan is not None else plan_shards(snapshot, n_shards)
        )
        self._manager_kwargs = dict(manager_kwargs or {})
        if pinned_operators:
            self._manager_kwargs["pinned_operators"] = dict(pinned_operators)
        capacity = int(table.index.capacity)
        if shard_mode == "replica":
            # Every worker replicates the full relation, so the Hilbert
            # snapshot layout every replica's statistics manager would
            # compute is identical across shards — compute the
            # permutation ONCE here and ship it via the manager
            # configuration, instead of once per worker per spawn.
            if (
                self._manager_kwargs.get("snapshot_layout", "hilbert") == "hilbert"
                and "layout_orders" not in self._manager_kwargs
                and snapshot.n_blocks > 1
            ):
                self._manager_kwargs["layout_orders"] = {
                    SHARD_TABLE: hilbert_order(snapshot.centers, snapshot.bounds)
                }
            handles = {
                sid: ShardWorkerHandle(
                    sid,
                    table.points,
                    capacity,
                    self._manager_kwargs,
                    fault_plan=worker_faults,
                    workers=workers_per_shard,
                    backend=active_backend(),
                )
                for sid in range(self.plan.n_shards)
            }
        else:
            handles = self._build_data_handles(
                snapshot, capacity, worker_faults, workers_per_shard
            )
        self.supervisor = ShardSupervisor(handles, policy)
        # The degradation tier: location-independent, estimate-only,
        # always inside the guaranteed bound.
        self._fallback_model = UniformModelEstimator(snapshot)
        self._guaranteed_bound = float(table.index.num_blocks)

    def _build_data_handles(
        self,
        snapshot,
        capacity: int,
        worker_faults: WorkerFaultPlan | None,
        workers_per_shard: int,
    ) -> dict[int, ShardWorkerHandle]:
        """Partition the relation and build one data-shard handle each.

        Blocks are assigned in *canonical* (ascending global block id)
        order, so each shard's sub-snapshot inherits exactly its slice
        of the global tie-break contract and the coordinator's merge
        can replay the unsharded scan bit-for-bit.  Alongside each
        shard's payload the coordinator keeps the shard's *hull bound*
        — ``(union rect of its blocks, smallest member block id)`` —
        the guaranteed lower bound used when the shard dies before
        ever answering a query.
        """
        canonical = snapshot.canonical()
        members, hulls = partition_blocks(canonical, self.plan)
        counts = canonical.counts.astype(np.int64)
        g_starts = np.zeros(canonical.n_blocks + 1, dtype=np.int64)
        np.cumsum(counts, out=g_starts[1:])
        # The worker-side statistics manager runs over the shard's own
        # points; a layout permutation sized for the full relation
        # would be wrong there.
        data_kwargs = {
            key: value
            for key, value in self._manager_kwargs.items()
            if key != "layout_orders"
        }
        self._hull_bounds: dict[int, tuple[tuple, int]] = {}
        handles: dict[int, ShardWorkerHandle] = {}
        for sid in range(self.plan.n_shards):
            rows_m = members[sid]
            if rows_m.size:
                rows = np.concatenate(
                    [
                        np.asarray(
                            self.table.block_row_ids(int(canonical.block_ids[m])),
                            dtype=np.int64,
                        )
                        for m in rows_m
                    ]
                )
                gpos = np.concatenate(
                    [
                        np.arange(g_starts[m], g_starts[m + 1], dtype=np.int64)
                        for m in rows_m
                    ]
                )
                self._hull_bounds[sid] = (
                    hulls[sid],
                    int(canonical.block_ids[rows_m[0]]),
                )
            else:
                rows = np.empty(0, dtype=np.int64)
                gpos = np.empty(0, dtype=np.int64)
            payload = {
                "snapshot": canonical.extract(rows_m),
                "rows": rows,
                "points": np.ascontiguousarray(self.table.points[rows]),
                "gpos": gpos,
                "capacity": capacity,
                "manager_kwargs": data_kwargs,
            }
            handles[sid] = ShardWorkerHandle(
                sid,
                np.empty((0, 2), dtype=float),
                capacity,
                data_kwargs,
                fault_plan=worker_faults,
                workers=workers_per_shard,
                backend=active_backend(),
                init_payload=payload,
                serve_fn=_serve_data_shard_chunk,
            )
        # Coordinator-side plan arbitration mirrors the unsharded
        # planner: same selection chain (pins included), same staleness
        # policy, same estimator tier vocabulary — only the cost
        # numbers come from the cross-shard estimate merge.
        self._arbiter = StatisticsManager(**data_kwargs)
        self._arbiter.register(self.table)
        self._arbiter_tiers = _estimator_tiers(
            self._arbiter.select_estimator_for_planning(self.table.name), "staircase"
        )
        return handles

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self, batch: QueryBatch, deadline_ms: float | None | object = _UNSET
    ) -> ShardedServingReport:
        """Serve one workload batch through the shards.

        Args:
            batch: The workload.
            deadline_ms: Per-batch deadline override (``None`` =
                unbounded; omitted = the tier default).

        Raises:
            OverloadError: Refused at admission (queue or time budget).
            ShardExhaustedError: Under ``strict`` serving, when any
                query's shard stayed unavailable through its retries.
        """
        effective_deadline = (
            self.deadline_ms if deadline_ms is _UNSET else deadline_ms
        )
        deadline = Deadline.after_ms(effective_deadline)
        n = len(batch)
        if self.admission is not None:
            self.admission.admit(n, deadline.remaining())
        start = time.perf_counter()
        serve = (
            self._serve_admitted_data
            if self.shard_mode == "data"
            else self._serve_admitted
        )
        try:
            report = serve(batch, deadline, effective_deadline)
        finally:
            if self.admission is not None:
                self.admission.release(n, time.perf_counter() - start)
        return report

    def _serve_admitted(
        self, batch: QueryBatch, deadline: Deadline, deadline_ms: float | None
    ) -> ShardedServingReport:
        n = len(batch)
        shard_ids = (
            self.plan.assign(batch.points) if n else np.empty(0, dtype=np.int64)
        )
        results: list = [None] * n
        explanations: list = [None] * n
        latencies_us = np.zeros(n, dtype=float)
        degraded = np.zeros(n, dtype=bool)
        counters_before = {
            sid: self._counter_snapshot(sid) for sid in self.supervisor.shard_ids
        }
        chunk_counts = dict.fromkeys(self.supervisor.shard_ids, 0)
        streams: list[tuple[int, list[np.ndarray]]] = []
        for sid in self.supervisor.shard_ids:
            member_idx = np.flatnonzero(shard_ids == sid)
            if member_idx.size == 0:
                continue
            chunks = [
                member_idx[lo : lo + self.chunk_size]
                for lo in range(0, member_idx.size, self.chunk_size)
            ]
            chunk_counts[sid] = len(chunks)
            for stream_no in range(min(self._workers_per_shard, len(chunks))):
                streams.append((sid, chunks[stream_no :: self._workers_per_shard]))
        start = time.perf_counter()
        if streams:
            with ThreadPoolExecutor(max_workers=len(streams)) as pool:
                futures = [
                    pool.submit(
                        self._serve_stream,
                        sid,
                        chunks,
                        batch,
                        deadline,
                        results,
                        explanations,
                        latencies_us,
                        degraded,
                    )
                    for sid, chunks in streams
                ]
                for future in futures:
                    future.result()
        self._fill_degraded(batch, shard_ids, degraded, results, explanations)
        seconds = time.perf_counter() - start
        shard_reports = tuple(
            self._shard_report(
                sid,
                int(np.count_nonzero(shard_ids == sid)),
                chunk_counts[sid],
                int(np.count_nonzero(degraded[shard_ids == sid])),
                counters_before[sid],
            )
            for sid in self.supervisor.shard_ids
        )
        return ShardedServingReport(
            mode="sharded",
            n_queries=n,
            seconds=seconds,
            results=results,
            explanations=explanations,
            cache_hits=None,
            cache_misses=None,
            latencies_us=latencies_us,
            shard_ids=shard_ids,
            degraded=degraded,
            partial=np.zeros(n, dtype=bool),
            shards=shard_reports,
            deadline_ms=deadline_ms,
            shard_mode="replica",
        )

    def _serve_stream(
        self,
        shard_id: int,
        chunks: list[np.ndarray],
        batch: QueryBatch,
        deadline: Deadline,
        results: list,
        explanations: list,
        latencies_us: np.ndarray,
        degraded: np.ndarray,
    ) -> None:
        """Serve one shard stream's chunks sequentially.

        Writes land at disjoint workload indices across streams, so the
        shared output arrays need no locking.
        """
        for chunk_idx in chunks:
            payload = {
                "points": batch.points[chunk_idx],
                "ks": batch.ks[chunk_idx],
            }
            chunk_start = time.perf_counter()
            try:
                (chunk_results, chunk_explanations), _attempts = (
                    self.supervisor.serve_chunk(shard_id, payload, deadline)
                )
            except ShardUnavailable:
                degraded[chunk_idx] = True
                latencies_us[chunk_idx] = (
                    (time.perf_counter() - chunk_start) / chunk_idx.size * 1e6
                )
                continue
            latencies_us[chunk_idx] = (
                (time.perf_counter() - chunk_start) / chunk_idx.size * 1e6
            )
            for offset, workload_i in enumerate(chunk_idx):
                results[workload_i] = chunk_results[offset]
                explanations[workload_i] = chunk_explanations[offset]

    def _fill_degraded(
        self,
        batch: QueryBatch,
        shard_ids: np.ndarray,
        degraded: np.ndarray,
        results: list,
        explanations: list,
    ) -> None:
        """Answer unavailable-shard queries from the local fallback tier."""
        degraded_idx = np.flatnonzero(degraded)
        if degraded_idx.size == 0:
            return
        if self.strict:
            failed = sorted(int(s) for s in np.unique(shard_ids[degraded_idx]))
            raise ShardExhaustedError(
                f"{degraded_idx.size} of {len(batch)} queries lost their shard "
                f"(shards {failed}) and strict serving forbids degradation"
            )
        costs = self._fallback_model.estimate_batch(
            batch.points[degraded_idx], batch.ks[degraded_idx]
        )
        # Belt and braces: the degraded answer must respect the
        # guaranteed bound even if the model misbehaves.
        costs = np.minimum(
            np.where(np.isfinite(costs) & (costs >= 0.0), costs, self._guaranteed_bound),
            self._guaranteed_bound,
        )
        for offset, workload_i in enumerate(degraded_idx):
            k = int(batch.ks[workload_i])
            sid = int(shard_ids[workload_i])
            where = "all data shards" if sid < 0 else f"shard {sid}"
            results[workload_i] = None
            explanations[workload_i] = PlanExplanation(
                chosen=DEGRADED_PLAN,
                alternatives={DEGRADED_PLAN: float(costs[offset])},
                effective_k=k,
                estimator_tier="uniform-model",
                degraded=True,
                notes=[
                    f"{where} unavailable; "
                    "estimate-only answer from the coordinator's local fallback"
                ],
            )

    # ------------------------------------------------------------------
    # Data-shard serving: fan out, stream, merge
    # ------------------------------------------------------------------
    def _serve_admitted_data(
        self, batch: QueryBatch, deadline: Deadline, deadline_ms: float | None
    ) -> ShardedServingReport:
        """Serve one batch in data-shard mode: every query, every shard.

        Chunks run concurrently (pipelined through the worker pools);
        within a chunk the coordinator drives the merge protocol of
        :mod:`repro.serving.merge` — open, arbitrate, then resume/scan
        rounds until every query is answered.
        """
        n = len(batch)
        shard_ids = np.full(n, -1, dtype=np.int64)
        results: list = [None] * n
        explanations: list = [None] * n
        latencies_us = np.zeros(n, dtype=float)
        degraded = np.zeros(n, dtype=bool)
        partial = np.zeros(n, dtype=bool)
        counters_before = {
            sid: self._counter_snapshot(sid) for sid in self.supervisor.shard_ids
        }
        rounds_total = dict.fromkeys(self.supervisor.shard_ids, 0)
        gaps_total = dict.fromkeys(self.supervisor.shard_ids, 0)
        chunks = [
            np.arange(lo, min(lo + self.chunk_size, n), dtype=np.int64)
            for lo in range(0, n, self.chunk_size)
        ]
        start = time.perf_counter()
        if chunks:
            with ThreadPoolExecutor(
                max_workers=min(len(chunks), max(1, self._workers_per_shard))
            ) as pool:
                futures = [
                    pool.submit(
                        self._serve_data_chunk,
                        chunk_idx,
                        batch,
                        deadline,
                        results,
                        explanations,
                        latencies_us,
                        degraded,
                        partial,
                    )
                    for chunk_idx in chunks
                ]
                for future in futures:
                    rounds, gaps = future.result()
                    for sid in rounds_total:
                        rounds_total[sid] += rounds[sid]
                        gaps_total[sid] += gaps[sid]
        if self.strict and partial.any():
            raise ShardExhaustedError(
                f"{int(np.count_nonzero(partial))} of {n} queries lost shard "
                "coverage (partial answers) and strict serving forbids "
                "degradation"
            )
        self._fill_degraded(batch, shard_ids, degraded, results, explanations)
        seconds = time.perf_counter() - start
        shard_reports = tuple(
            self._shard_report(
                sid, n, rounds_total[sid], gaps_total[sid], counters_before[sid]
            )
            for sid in self.supervisor.shard_ids
        )
        return ShardedServingReport(
            mode="sharded",
            n_queries=n,
            seconds=seconds,
            results=results,
            explanations=explanations,
            cache_hits=None,
            cache_misses=None,
            latencies_us=latencies_us,
            shard_ids=shard_ids,
            degraded=degraded,
            partial=partial,
            shards=shard_reports,
            deadline_ms=deadline_ms,
            shard_mode="data",
        )

    def _fan_out(
        self,
        payloads: dict[int, dict],
        deadline: Deadline,
        rounds: dict[int, int],
        dead: set[int],
    ) -> dict[int, dict]:
        """One protocol round against several shards, concurrently.

        A shard that exhausts its supervision budget joins ``dead`` for
        the rest of this chunk; its absence from the returned answers
        is how the callers learn about the coverage gap.
        """
        answers: dict[int, dict] = {}
        live = {sid: p for sid, p in payloads.items() if sid not in dead}
        if not live:
            return answers
        with ThreadPoolExecutor(max_workers=len(live)) as pool:
            futures = {
                sid: pool.submit(self.supervisor.serve_chunk, sid, payload, deadline)
                for sid, payload in live.items()
            }
            for sid, future in futures.items():
                rounds[sid] += 1
                try:
                    answer, __ = future.result()
                except ShardUnavailable:
                    dead.add(sid)
                else:
                    answers[sid] = answer
        return answers

    def _dead_bound(self, sid: int, point: Point) -> tuple | None:
        """A never-answering shard's hull bound for one query.

        ``(MINDIST to the union rect of its blocks, smallest member
        block id, same MINDIST as stop threshold)`` — conservative
        (the true nearest block can only be farther), which keeps
        exact-at-the-bound finishes and partial prefixes safe.
        ``None`` for a shard that owns no blocks (no possible gap).
        """
        hull = self._hull_bounds.get(sid)
        if hull is None:
            return None
        rect, gid = hull
        mindist = mindist_point_rect(point, Rect(*rect))
        return (mindist, gid, mindist)

    def _serve_data_chunk(
        self,
        chunk_idx: np.ndarray,
        batch: QueryBatch,
        deadline: Deadline,
        results: list,
        explanations: list,
        latencies_us: np.ndarray,
        degraded: np.ndarray,
        partial: np.ndarray,
    ) -> tuple[dict[int, int], dict[int, int]]:
        """Drive one chunk through the full merge protocol.

        Writes land at disjoint workload indices across chunks, so the
        shared output arrays need no locking.  Returns per-shard
        ``(rounds submitted, coverage-gap queries)`` for the batch's
        shard reports.
        """
        chunk_start = time.perf_counter()
        pts = batch.points[chunk_idx]
        ks = batch.ks[chunk_idx]
        m = int(chunk_idx.size)
        all_sids = self.supervisor.shard_ids
        rounds = dict.fromkeys(all_sids, 0)
        gap_counts = dict.fromkeys(all_sids, 0)
        dead: set[int] = set()
        open_payload = {"round": "open", "points": pts, "ks": ks}
        answers = self._fan_out(
            {sid: open_payload for sid in all_sids}, deadline, rounds, dead
        )
        if not answers:
            # Every shard down: estimate-only degradation, as in
            # replica mode (there is nothing to merge).
            degraded[chunk_idx] = True
            for sid in dead:
                gap_counts[sid] += m
            latencies_us[chunk_idx] = (time.perf_counter() - chunk_start) / m * 1e6
            return rounds, gap_counts
        live = sorted(answers)
        estimates = {sid: answers[sid]["estimates"] for sid in live}
        filter_pos: list[int] = []
        inc_pos: list[int] = []
        for i in range(m):
            cost_inc, tier, est_degraded = merge_select_estimates(
                [estimates[sid][0][i] for sid in live],
                [estimates[sid][1][i] for sid in live],
                [estimates[sid][2][i] for sid in live],
                self._guaranteed_bound,
            )
            explanation = self._arbitrate(
                Point(float(pts[i, 0]), float(pts[i, 1])),
                int(ks[i]),
                cost_inc,
                tier,
                est_degraded or bool(dead),
            )
            explanations[chunk_idx[i]] = explanation
            if explanation.chosen == FilterThenKnnOperator.name:
                filter_pos.append(i)
            else:
                inc_pos.append(i)
        if filter_pos:
            self._serve_filter_group(
                filter_pos, pts, ks, chunk_idx, answers, dead, deadline,
                rounds, gap_counts, results, explanations, partial,
            )
        if inc_pos:
            self._serve_incremental_group(
                inc_pos, pts, ks, chunk_idx, answers, dead, deadline,
                rounds, gap_counts, results, explanations, partial,
            )
        latencies_us[chunk_idx] = (time.perf_counter() - chunk_start) / m * 1e6
        return rounds, gap_counts

    def _serve_filter_group(
        self,
        filter_pos: list[int],
        pts: np.ndarray,
        ks: np.ndarray,
        chunk_idx: np.ndarray,
        answers: dict[int, dict],
        dead: set[int],
        deadline: Deadline,
        rounds: dict[int, int],
        gap_counts: dict[int, int],
        results: list,
        explanations: list,
        partial: np.ndarray,
    ) -> None:
        """Full-scan-chosen queries: one scan round, one global merge.

        Each surviving shard returns its local top-k with global
        ``(distance, concatenation position)`` tie keys;
        :func:`~repro.serving.merge.merge_filter_topk` reproduces the
        unsharded full scan's stable emission.  Dead shards clamp the
        answer to the verified prefix below their tightest known bound.
        """
        fidx = np.asarray(filter_pos, dtype=np.int64)
        payload = {"round": "scan", "points": pts[fidx], "ks": ks[fidx]}
        scan_answers = self._fan_out(
            {sid: payload for sid in answers if sid not in dead},
            deadline,
            rounds,
            dead,
        )
        for j, i in enumerate(filter_pos):
            k = int(ks[i])
            point = Point(float(pts[i, 0]), float(pts[i, 1]))
            rows, dists = merge_filter_topk(
                k, [scan_answers[sid]["topk"][j] for sid in sorted(scan_answers)]
            )
            t_gap = None
            gap_sids: list[int] = []
            for sid in sorted(dead):
                state = answers.get(sid)
                if state is not None:
                    entries, __, bound = state["streams"][i]
                    if entries:
                        shard_min = float(entries[0][0])
                    elif bound is not None:
                        shard_min = float(bound[0])
                    else:
                        continue  # stream spent: shard holds no rows here
                else:
                    hull_bound = self._dead_bound(sid, point)
                    if hull_bound is None:
                        continue  # shard owns no blocks: no gap
                    shard_min = float(hull_bound[0])
                gap_sids.append(sid)
                t_gap = shard_min if t_gap is None else min(t_gap, shard_min)
            workload_i = int(chunk_idx[i])
            blocks_scanned = int(self._guaranteed_bound)
            if t_gap is None:
                results[workload_i] = ExecutionResult(
                    FilterThenKnnOperator.name, blocks_scanned, row_ids=rows
                )
            else:
                keep = rows[dists < t_gap]
                results[workload_i] = ExecutionResult(
                    FilterThenKnnOperator.name, blocks_scanned, row_ids=keep
                )
                partial[workload_i] = True
                for sid in gap_sids:
                    gap_counts[sid] += 1
                explanation = explanations[workload_i]
                explanation.degraded = True
                explanation.notes.append(
                    f"{PARTIAL_PLAN}: shards {gap_sids} unreachable; verified "
                    f"prefix of {int(keep.shape[0])} row(s) below bound {t_gap:.6g}"
                )

    def _serve_incremental_group(
        self,
        inc_pos: list[int],
        pts: np.ndarray,
        ks: np.ndarray,
        chunk_idx: np.ndarray,
        answers: dict[int, dict],
        dead: set[int],
        deadline: Deadline,
        rounds: dict[int, int],
        gap_counts: dict[int, int],
        results: list,
        explanations: list,
        partial: np.ndarray,
    ) -> None:
        """Distance-browsing-chosen queries: the streaming merge loop.

        Each query's :class:`~repro.serving.merge.QueryMerge` replays
        the global block admission; queries that starve a stream are
        batched into one resume round per shard per iteration, so the
        coordinator's round trips scale with merge depth, not with
        queries × shards.
        """
        merges: dict[int, QueryMerge] = {}
        for i in inc_pos:
            point = Point(float(pts[i, 0]), float(pts[i, 1]))
            merge = QueryMerge(int(ks[i]))
            for sid in self.supervisor.shard_ids:
                state = answers.get(sid)
                if state is not None:
                    entries, cursor, bound = state["streams"][i]
                    merge.add_stream(sid, entries, cursor, bound)
                    if sid in dead:  # answered open, died since
                        merge.mark_dead(sid)
                else:
                    hull_bound = self._dead_bound(sid, point)
                    if hull_bound is not None:
                        merge.add_dead(sid, hull_bound)
            merges[i] = merge
        pending = dict(merges)
        while pending:
            needs_by_shard: dict[int, list[tuple[int, int, int, float]]] = {}
            for i in list(pending):
                needs = pending[i].advance()
                if needs is None:
                    del pending[i]
                    continue
                for sid, (cursor, min_points, min_mindist) in needs.items():
                    needs_by_shard.setdefault(sid, []).append(
                        (i, cursor, min_points, min_mindist)
                    )
            if not pending:
                break
            already_dead = set(dead)
            payloads = {}
            for sid, requests in needs_by_shard.items():
                ridx = np.asarray([r[0] for r in requests], dtype=np.int64)
                payloads[sid] = {
                    "round": "resume",
                    "points": pts[ridx],
                    "ks": ks[ridx],
                    "cursors": np.asarray([r[1] for r in requests], dtype=np.int64),
                    "min_points": np.asarray([r[2] for r in requests], dtype=np.int64),
                    "min_mindists": np.asarray([r[3] for r in requests], dtype=float),
                }
            resume_answers = self._fan_out(payloads, deadline, rounds, dead)
            for sid, requests in needs_by_shard.items():
                if sid in resume_answers:
                    streams = resume_answers[sid]["streams"]
                    for j, (i, __, ___, ____) in enumerate(requests):
                        if i in pending:
                            entries, cursor, bound = streams[j]
                            pending[i].streams[sid].extend(entries, cursor, bound)
            # A shard lost this iteration becomes a permanent coverage
            # gap for every still-running merge (its last known bound
            # stays as the gap bound).
            for sid in dead - already_dead:
                for merge in pending.values():
                    if sid in merge.streams:
                        merge.mark_dead(sid)
        for i, merge in merges.items():
            rows, blocks_scanned, n_verified = merge.result()
            workload_i = int(chunk_idx[i])
            results[workload_i] = ExecutionResult(
                IncrementalKnnOperator.name, blocks_scanned, row_ids=rows
            )
            if merge.partial:
                partial[workload_i] = True
                for sid in merge.gap_shards:
                    gap_counts[sid] += 1
                explanation = explanations[workload_i]
                explanation.degraded = True
                explanation.notes.append(
                    f"{PARTIAL_PLAN}: shards {list(merge.gap_shards)} unreachable; "
                    f"verified prefix of {n_verified} row(s) below bound "
                    f"{merge.t_gap:.6g}"
                )

    def _arbitrate(
        self,
        point: Point,
        k: int,
        cost_incremental: float,
        tier: str,
        est_degraded: bool,
    ) -> PlanExplanation:
        """Arbitrate one query's plan over the merged shard estimates.

        Mirrors the unsharded planner's
        ``_assemble_select_explanation``: the same candidate set, tie
        order, selection chain (pins included), and per-link trail —
        only the incremental cost comes from the cross-shard estimate
        merge, and the tier label is the worst shard's.
        """
        alternatives = {
            FilterThenKnnOperator.name: self._guaranteed_bound,
            IncrementalKnnOperator.name: cost_incremental,
        }
        explanation = PlanExplanation(
            chosen="",
            alternatives=alternatives,
            effective_k=k,
            selectivity=1.0,
            kernel_backend=active_backend(),
        )
        catalog_generation, data_generation = self._arbiter.catalog_freshness(
            self.table.name
        )
        context = PlanningContext(
            kind="select",
            table=self.table.name,
            candidates=alternatives,
            tie_order=(FilterThenKnnOperator.name, IncrementalKnnOperator.name),
            estimator_tiers=self._arbiter_tiers,
            estimate_operators=(
                IncrementalKnnOperator.name,
                RegionPrunedKnnOperator.name,
            ),
            estimate_tier=tier,
            estimate_degraded=est_degraded,
            data_generation=data_generation,
            catalog_generation=catalog_generation,
            staleness_policy=self._arbiter.staleness_policy,
            cache_stats=self._arbiter.cache_stats(),
            cache_hit=None,
            effective_k=k,
            selectivity=1.0,
        )
        query = KnnSelectQuery(self.table.name, point, k=k)
        _run_chain(self._arbiter, query, explanation, context)
        explanation.estimator_tier = tier
        explanation.degraded = est_degraded
        if est_degraded:
            explanation.notes.append(
                "merged shard estimates degraded (worst answering tier "
                f"{tier or 'unknown'!r})"
            )
        return explanation

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    def _counter_snapshot(self, shard_id: int) -> tuple[int, int, int, int, int]:
        c = self.supervisor.counters(shard_id)
        return (c.attempts, c.retries, c.respawns, c.timeouts, c.failures)

    def _shard_report(
        self,
        shard_id: int,
        n_queries: int,
        n_chunks: int,
        degraded_queries: int,
        before: tuple[int, int, int, int, int],
    ) -> ShardReport:
        after = self._counter_snapshot(shard_id)
        attempts, retries, respawns, timeouts, failures = (
            after[i] - before[i] for i in range(5)
        )
        return ShardReport(
            shard_id=shard_id,
            n_queries=n_queries,
            n_chunks=n_chunks,
            attempts=attempts,
            retries=retries,
            respawns=respawns,
            timeouts=timeouts,
            failures=failures,
            degraded_queries=degraded_queries,
            circuit_open=self.supervisor.health(shard_id).circuit_open,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedServingTier":
        """Spawn every shard's worker pool eagerly and wait until live.

        Long-lived callers pay the spawn (and per-worker engine or
        sub-snapshot build) exactly once here instead of on the first
        served batch; :attr:`pools_spawned` then stays at
        ``n_shards`` across any number of :meth:`serve` /
        :meth:`serve_many` calls unless a worker crashes and is
        respawned.  Returns ``self`` so ``tier.start()`` chains with
        the context-manager form.
        """
        handles = [self.supervisor.handle(sid) for sid in self.supervisor.shard_ids]
        with ThreadPoolExecutor(max_workers=len(handles)) as pool:
            for future in [pool.submit(handle.spawn) for handle in handles]:
                future.result()
        return self

    @property
    def pools_spawned(self) -> int:
        """Total pool incarnations ever created across all shards."""
        return sum(
            self.supervisor.handle(sid).spawned for sid in self.supervisor.shard_ids
        )

    @property
    def shipped_bytes(self) -> dict[int, int]:
        """Per-shard bytes of data shipped to each worker's initializer.

        Deterministic (independent of allocator behavior), which makes
        it the benchmark's primary memory-sublinearity measure: in data
        mode each shard receives roughly ``1/n_shards`` of the replica
        payload.
        """
        return {
            sid: self.supervisor.handle(sid).shipped_bytes
            for sid in self.supervisor.shard_ids
        }

    def worker_stats(self, timeout: float = 30.0) -> list[dict]:
        """Live per-shard worker telemetry (peak RSS, payload bytes)."""
        futures = [
            self.supervisor.handle(sid).submit_fn(_worker_stats)[1]
            for sid in self.supervisor.shard_ids
        ]
        return [future.result(timeout=timeout) for future in futures]

    def serve_many(
        self,
        batches,
        deadline_ms: float | None | object = _UNSET,
        max_in_flight: int = 4,
    ) -> ServeManyReport:
        """Serve several batches pipelined through the live worker pools.

        Up to ``max_in_flight`` batches are in flight at once, so one
        batch's merge rounds interleave with another's through the same
        worker processes instead of serializing at the tier boundary.
        Admission refusals (:class:`~repro.resilience.errors.OverloadError`)
        are recorded per batch — ``reports[i]`` is ``None`` — rather
        than failing the run.  Per-query latencies are concatenated
        across batches, so the report's percentiles describe queries.
        """
        batches = list(batches)
        reports: list = [None] * len(batches)
        n_overloaded = 0
        start = time.perf_counter()
        if batches:
            with ThreadPoolExecutor(max_workers=max(1, int(max_in_flight))) as pool:
                futures = {
                    pool.submit(self.serve, b, deadline_ms): i
                    for i, b in enumerate(batches)
                }
                for future, i in futures.items():
                    try:
                        reports[i] = future.result()
                    except OverloadError:
                        n_overloaded += 1
        seconds = time.perf_counter() - start
        served = [r.latencies_us for r in reports if r is not None]
        latencies = (
            np.concatenate(served) if served else np.empty(0, dtype=float)
        )
        return ServeManyReport(
            reports=tuple(reports),
            n_batches=len(batches),
            n_overloaded=n_overloaded,
            seconds=seconds,
            latencies_us=latencies,
        )

    def close(self) -> None:
        """Terminate every shard's worker pool."""
        self.supervisor.close()

    def __enter__(self) -> "ShardedServingTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_sharded(table: SpatialTable, batch: QueryBatch, **tier_kwargs) -> ShardedServingReport:
    """One-shot sharded serving: build a tier, serve, tear it down.

    Thin convenience over :class:`ShardedServingTier` for CLI and
    benchmark runs that serve a single batch; long-lived callers should
    hold a tier instead and amortize the worker spawns.
    """
    with ShardedServingTier(table, **tier_kwargs) as tier:
        return tier.serve(batch)
