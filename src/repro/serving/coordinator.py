"""The sharded serving coordinator: route, fan out, merge, degrade.

:class:`ShardedServingTier` is the front door of the serving
subsystem.  Per batch it:

1. asks the :class:`~repro.serving.admission.AdmissionController` (if
   configured) for admission under the batch's deadline;
2. routes every query to its spatial shard via the
   :class:`~repro.serving.shards.ShardPlan`;
3. fans the per-shard sub-workloads out to supervised worker processes
   in ``chunk_size`` chunks (one coordinator thread per shard stream),
   each chunk served under the
   :class:`~repro.serving.supervisor.ShardSupervisor`'s
   deadline/retry/respawn/breaker contract;
4. merges the per-shard answers back into workload order with
   per-shard provenance (:class:`ShardReport`);
5. degrades instead of failing: queries whose shard stayed unavailable
   are answered by the coordinator's *local* uniform-model fallback —
   an estimate-only answer clamped to the guaranteed bound (the
   relation's block count), flagged ``degraded=True`` with
   ``results[i] is None`` — unless ``strict`` serving was requested, in
   which case a :class:`~repro.resilience.errors.ShardExhaustedError`
   is raised.

Because every worker holds a full replica of the point set and the
quadtree partition is a pure function of (points, capacity), every
*non-degraded* answer is bit-identical to what an unsharded
:class:`~repro.engine.SpatialEngine` with the same configuration would
have produced — the chaos suite asserts exactly that.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.engine.planner import PlanExplanation
from repro.engine.table import SpatialTable
from repro.estimators.uniform_model import UniformModelEstimator
from repro.geometry.backends import active_backend
from repro.geometry.hilbert import hilbert_order
from repro.index.snapshot import as_snapshot
from repro.serving.worker import SHARD_TABLE
from repro.resilience.errors import ShardExhaustedError
from repro.resilience.faultinject import WorkerFaultPlan
from repro.serving.admission import AdmissionController
from repro.serving.shards import ShardPlan, plan_shards
from repro.serving.supervisor import (
    Deadline,
    ShardSupervisor,
    ShardUnavailable,
    ShardWorkerHandle,
    SupervisionPolicy,
)
from repro.workloads.queries import QueryBatch
from repro.workloads.serving import ServingReport

#: Plan label for degraded, estimate-only answers.
DEGRADED_PLAN = "degraded-estimate-only"

#: Sentinel distinguishing "use the tier default" from an explicit None.
_UNSET = object()


@dataclass(frozen=True)
class ShardReport:
    """Per-shard provenance for one served batch.

    Attributes:
        shard_id: The shard.
        n_queries: Queries routed to it this batch.
        n_chunks: Chunks its stream(s) submitted.
        attempts: Worker submissions (includes retries).
        retries: Re-submissions after a failed attempt.
        respawns: Pool incarnations killed and replaced (crash or hang).
        timeouts: Attempts abandoned on the future timeout.
        failures: Failed attempts of any kind.
        degraded_queries: Queries this shard could not answer (served by
            the coordinator's local fallback instead).
        circuit_open: Whether the shard's breaker was open when the
            batch finished.
    """

    shard_id: int
    n_queries: int
    n_chunks: int
    attempts: int
    retries: int
    respawns: int
    timeouts: int
    failures: int
    degraded_queries: int
    circuit_open: bool

    def describe(self) -> str:
        """One line for the report summary."""
        bits = [
            f"shard {self.shard_id}: {self.n_queries} queries",
            f"{self.attempts} attempts",
        ]
        if self.retries:
            bits.append(f"{self.retries} retries")
        if self.respawns:
            bits.append(f"{self.respawns} respawns")
        if self.timeouts:
            bits.append(f"{self.timeouts} timeouts")
        if self.degraded_queries:
            bits.append(f"{self.degraded_queries} degraded")
        if self.circuit_open:
            bits.append("breaker OPEN")
        return ", ".join(bits)


@dataclass(frozen=True)
class ShardedServingReport(ServingReport):
    """A :class:`~repro.workloads.serving.ServingReport` with shard provenance.

    Attributes:
        shard_ids: ``(n,)`` shard each query was routed to.
        degraded: ``(n,)`` bool mask of estimate-only answers (their
            ``results`` entry is ``None``).
        shards: Per-shard :class:`ShardReport`, ascending by shard id.
        deadline_ms: The deadline the batch ran under (``None`` =
            unbounded).
    """

    shard_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    degraded: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    shards: tuple[ShardReport, ...] = ()
    deadline_ms: float | None = None

    @property
    def n_degraded(self) -> int:
        """Queries answered by the coordinator's degraded fallback."""
        return int(np.count_nonzero(self.degraded))

    def describe(self) -> str:
        """Multi-line summary: base report + shard and degradation lines."""
        lines = [super().describe()]
        if self.deadline_ms is not None:
            lines.append(f"deadline:    {self.deadline_ms:.0f} ms")
        healthy = self.n_queries - self.n_degraded
        lines.append(
            f"degraded:    {self.n_degraded} of {self.n_queries} queries "
            f"({healthy} exact)"
        )
        for shard in self.shards:
            lines.append(f"  {shard.describe()}")
        return "\n".join(lines)


class ShardedServingTier:
    """A supervised, sharded serving front end over one relation.

    Args:
        table: The relation to serve (its points are replicated to
            every shard worker).
        n_shards: Spatial shards / worker pools.
        workers_per_shard: Processes per shard pool; each extra worker
            adds one concurrent chunk stream for that shard's traffic.
        chunk_size: Queries per worker submission (the retry and
            degradation granularity).
        deadline_ms: Default per-batch deadline (``None`` = unbounded);
            :meth:`serve` can override per batch.
        policy: Supervision knobs (retries, backoff, breaker, timeout).
        admission: Optional shared admission gate.
        worker_faults: Fault-injection plan shipped to every worker
            (chaos testing).
        strict: Raise :class:`ShardExhaustedError` instead of degrading.
        manager_kwargs: :class:`~repro.engine.StatisticsManager`
            configuration for the worker replicas.  Must match the
            reference engine's configuration for bit-identical answers;
            leave ``estimate_cache_size`` at 0 — a warm cache can flip
            plan choices and break the identity.
        pinned_operators: Forced per-table/per-kind operator choices
            for every worker replica's selection chain — plain
            picklable data (``{"table:kind" | "kind": operator}``),
            merged into ``manager_kwargs``.  The reference engine must
            be configured with the same pins or the bit-identity with
            unsharded planning breaks.

    The tier is a context manager; :meth:`close` terminates every
    worker pool.
    """

    def __init__(
        self,
        table: SpatialTable,
        *,
        n_shards: int = 4,
        workers_per_shard: int = 1,
        chunk_size: int = 1024,
        deadline_ms: float | None = None,
        policy: SupervisionPolicy | None = None,
        admission: AdmissionController | None = None,
        worker_faults: WorkerFaultPlan | None = None,
        strict: bool = False,
        manager_kwargs: dict | None = None,
        shard_plan: ShardPlan | None = None,
        pinned_operators: dict | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if table.n_rows == 0:
            raise ValueError("cannot shard-serve an empty table")
        self.table = table
        self.chunk_size = int(chunk_size)
        self.deadline_ms = deadline_ms
        self.strict = bool(strict)
        self.admission = admission
        self._workers_per_shard = int(workers_per_shard)
        snapshot = as_snapshot(table.index)
        # Routing is a pure load-partitioning concern: any ShardPlan
        # over any substrate yields the same answers, because every
        # worker replicates the full relation.  A caller may therefore
        # supply a plan built from a different index (n_shards is then
        # taken from the plan).
        self.plan: ShardPlan = (
            shard_plan if shard_plan is not None else plan_shards(snapshot, n_shards)
        )
        self._manager_kwargs = dict(manager_kwargs or {})
        if pinned_operators:
            self._manager_kwargs["pinned_operators"] = dict(pinned_operators)
        # Every worker replicates the full relation, so the Hilbert
        # snapshot layout every replica's statistics manager would
        # compute is identical across shards — compute the permutation
        # ONCE here and ship it via the manager configuration, instead
        # of once per worker process per spawn.
        if (
            self._manager_kwargs.get("snapshot_layout", "hilbert") == "hilbert"
            and "layout_orders" not in self._manager_kwargs
            and snapshot.n_blocks > 1
        ):
            self._manager_kwargs["layout_orders"] = {
                SHARD_TABLE: hilbert_order(snapshot.centers, snapshot.bounds)
            }
        capacity = int(table.index.capacity)
        handles = {
            sid: ShardWorkerHandle(
                sid,
                table.points,
                capacity,
                self._manager_kwargs,
                fault_plan=worker_faults,
                workers=workers_per_shard,
                backend=active_backend(),
            )
            for sid in range(self.plan.n_shards)
        }
        self.supervisor = ShardSupervisor(handles, policy)
        # The degradation tier: location-independent, estimate-only,
        # always inside the guaranteed bound.
        self._fallback_model = UniformModelEstimator(snapshot)
        self._guaranteed_bound = float(table.index.num_blocks)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self, batch: QueryBatch, deadline_ms: float | None | object = _UNSET
    ) -> ShardedServingReport:
        """Serve one workload batch through the shards.

        Args:
            batch: The workload.
            deadline_ms: Per-batch deadline override (``None`` =
                unbounded; omitted = the tier default).

        Raises:
            OverloadError: Refused at admission (queue or time budget).
            ShardExhaustedError: Under ``strict`` serving, when any
                query's shard stayed unavailable through its retries.
        """
        effective_deadline = (
            self.deadline_ms if deadline_ms is _UNSET else deadline_ms
        )
        deadline = Deadline.after_ms(effective_deadline)
        n = len(batch)
        if self.admission is not None:
            self.admission.admit(n, deadline.remaining())
        start = time.perf_counter()
        try:
            report = self._serve_admitted(batch, deadline, effective_deadline)
        finally:
            if self.admission is not None:
                self.admission.release(n, time.perf_counter() - start)
        return report

    def _serve_admitted(
        self, batch: QueryBatch, deadline: Deadline, deadline_ms: float | None
    ) -> ShardedServingReport:
        n = len(batch)
        shard_ids = (
            self.plan.assign(batch.points) if n else np.empty(0, dtype=np.int64)
        )
        results: list = [None] * n
        explanations: list = [None] * n
        latencies_us = np.zeros(n, dtype=float)
        degraded = np.zeros(n, dtype=bool)
        counters_before = {
            sid: self._counter_snapshot(sid) for sid in self.supervisor.shard_ids
        }
        chunk_counts = dict.fromkeys(self.supervisor.shard_ids, 0)
        streams: list[tuple[int, list[np.ndarray]]] = []
        for sid in self.supervisor.shard_ids:
            member_idx = np.flatnonzero(shard_ids == sid)
            if member_idx.size == 0:
                continue
            chunks = [
                member_idx[lo : lo + self.chunk_size]
                for lo in range(0, member_idx.size, self.chunk_size)
            ]
            chunk_counts[sid] = len(chunks)
            for stream_no in range(min(self._workers_per_shard, len(chunks))):
                streams.append((sid, chunks[stream_no :: self._workers_per_shard]))
        start = time.perf_counter()
        if streams:
            with ThreadPoolExecutor(max_workers=len(streams)) as pool:
                futures = [
                    pool.submit(
                        self._serve_stream,
                        sid,
                        chunks,
                        batch,
                        deadline,
                        results,
                        explanations,
                        latencies_us,
                        degraded,
                    )
                    for sid, chunks in streams
                ]
                for future in futures:
                    future.result()
        self._fill_degraded(batch, shard_ids, degraded, results, explanations)
        seconds = time.perf_counter() - start
        shard_reports = tuple(
            self._shard_report(
                sid,
                int(np.count_nonzero(shard_ids == sid)),
                chunk_counts[sid],
                int(np.count_nonzero(degraded[shard_ids == sid])),
                counters_before[sid],
            )
            for sid in self.supervisor.shard_ids
        )
        return ShardedServingReport(
            mode="sharded",
            n_queries=n,
            seconds=seconds,
            results=results,
            explanations=explanations,
            cache_hits=None,
            cache_misses=None,
            latencies_us=latencies_us,
            shard_ids=shard_ids,
            degraded=degraded,
            shards=shard_reports,
            deadline_ms=deadline_ms,
        )

    def _serve_stream(
        self,
        shard_id: int,
        chunks: list[np.ndarray],
        batch: QueryBatch,
        deadline: Deadline,
        results: list,
        explanations: list,
        latencies_us: np.ndarray,
        degraded: np.ndarray,
    ) -> None:
        """Serve one shard stream's chunks sequentially.

        Writes land at disjoint workload indices across streams, so the
        shared output arrays need no locking.
        """
        for chunk_idx in chunks:
            payload = {
                "points": batch.points[chunk_idx],
                "ks": batch.ks[chunk_idx],
            }
            chunk_start = time.perf_counter()
            try:
                chunk_results, chunk_explanations, _attempts = (
                    self.supervisor.serve_chunk(shard_id, payload, deadline)
                )
            except ShardUnavailable:
                degraded[chunk_idx] = True
                latencies_us[chunk_idx] = (
                    (time.perf_counter() - chunk_start) / chunk_idx.size * 1e6
                )
                continue
            latencies_us[chunk_idx] = (
                (time.perf_counter() - chunk_start) / chunk_idx.size * 1e6
            )
            for offset, workload_i in enumerate(chunk_idx):
                results[workload_i] = chunk_results[offset]
                explanations[workload_i] = chunk_explanations[offset]

    def _fill_degraded(
        self,
        batch: QueryBatch,
        shard_ids: np.ndarray,
        degraded: np.ndarray,
        results: list,
        explanations: list,
    ) -> None:
        """Answer unavailable-shard queries from the local fallback tier."""
        degraded_idx = np.flatnonzero(degraded)
        if degraded_idx.size == 0:
            return
        if self.strict:
            failed = sorted(int(s) for s in np.unique(shard_ids[degraded_idx]))
            raise ShardExhaustedError(
                f"{degraded_idx.size} of {len(batch)} queries lost their shard "
                f"(shards {failed}) and strict serving forbids degradation"
            )
        costs = self._fallback_model.estimate_batch(
            batch.points[degraded_idx], batch.ks[degraded_idx]
        )
        # Belt and braces: the degraded answer must respect the
        # guaranteed bound even if the model misbehaves.
        costs = np.minimum(
            np.where(np.isfinite(costs) & (costs >= 0.0), costs, self._guaranteed_bound),
            self._guaranteed_bound,
        )
        for offset, workload_i in enumerate(degraded_idx):
            k = int(batch.ks[workload_i])
            results[workload_i] = None
            explanations[workload_i] = PlanExplanation(
                chosen=DEGRADED_PLAN,
                alternatives={DEGRADED_PLAN: float(costs[offset])},
                effective_k=k,
                estimator_tier="uniform-model",
                degraded=True,
                notes=[
                    f"shard {int(shard_ids[workload_i])} unavailable; "
                    "estimate-only answer from the coordinator's local fallback"
                ],
            )

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    def _counter_snapshot(self, shard_id: int) -> tuple[int, int, int, int, int]:
        c = self.supervisor.counters(shard_id)
        return (c.attempts, c.retries, c.respawns, c.timeouts, c.failures)

    def _shard_report(
        self,
        shard_id: int,
        n_queries: int,
        n_chunks: int,
        degraded_queries: int,
        before: tuple[int, int, int, int, int],
    ) -> ShardReport:
        after = self._counter_snapshot(shard_id)
        attempts, retries, respawns, timeouts, failures = (
            after[i] - before[i] for i in range(5)
        )
        return ShardReport(
            shard_id=shard_id,
            n_queries=n_queries,
            n_chunks=n_chunks,
            attempts=attempts,
            retries=retries,
            respawns=respawns,
            timeouts=timeouts,
            failures=failures,
            degraded_queries=degraded_queries,
            circuit_open=self.supervisor.health(shard_id).circuit_open,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Terminate every shard's worker pool."""
        self.supervisor.close()

    def __enter__(self) -> "ShardedServingTier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_sharded(table: SpatialTable, batch: QueryBatch, **tier_kwargs) -> ShardedServingReport:
    """One-shot sharded serving: build a tier, serve, tear it down.

    Thin convenience over :class:`ShardedServingTier` for CLI and
    benchmark runs that serve a single batch; long-lived callers should
    hold a tier instead and amortize the worker spawns.
    """
    with ShardedServingTier(table, **tier_kwargs) as tier:
        return tier.serve(batch)
