"""Enable ``python -m repro <subcommand>``."""

import sys

from repro.cli import main

sys.exit(main())
