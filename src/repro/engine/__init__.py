"""A miniature spatial query engine.

The paper's premise is a spatial DBMS whose optimizer "arbitrates among
the various QEPs and picks the one with the least processing cost"
using the k-NN cost estimates.  This subpackage is that substrate, kept
deliberately small but complete end-to-end:

* :mod:`~repro.engine.table` — attribute-carrying spatial tables;
* :mod:`~repro.engine.expressions` — relational predicates with sampled
  selectivity estimation;
* :mod:`~repro.engine.queries` — declarative query specifications
  (k-NN-Select and k-NN-Join with relational/spatial predicates — the
  exact query shapes of the paper's Section 1);
* :mod:`~repro.engine.physical` — executable physical operators that
  count the blocks they scan;
* :mod:`~repro.engine.stats` — the statistics manager holding
  Count-Indexes and the paper's catalogs per table / table pair;
* :mod:`~repro.engine.planner` — QEP enumeration and cost-based choice;
* :mod:`~repro.engine.engine` — the façade: register tables, ``explain``
  and ``execute`` queries.
"""

from repro.engine.cache import EstimateCache
from repro.engine.table import SpatialTable
from repro.engine.expressions import (
    And,
    AttributePredicate,
    Not,
    Or,
    Predicate,
    column,
)
from repro.engine.queries import KnnJoinQuery, KnnSelectQuery, RangeQuery
from repro.engine.physical import ExecutionResult
from repro.engine.planner import PlanExplanation
from repro.engine.stats import StatisticsManager
from repro.engine.engine import SpatialEngine

__all__ = [
    "EstimateCache",
    "SpatialTable",
    "Predicate",
    "AttributePredicate",
    "And",
    "Or",
    "Not",
    "column",
    "KnnSelectQuery",
    "KnnJoinQuery",
    "RangeQuery",
    "ExecutionResult",
    "PlanExplanation",
    "StatisticsManager",
    "SpatialEngine",
]
