"""The statistics manager: catalogs and estimators per relation.

A query optimizer "keeps a set of catalog information that summarizes
the cost estimates" (Section 2).  The statistics manager owns exactly
that state for the engine:

* per table — the Count-Index and a lazily built
  :class:`~repro.estimators.staircase.StaircaseEstimator`;
* per ordered table pair — a lazily built
  :class:`~repro.estimators.catalog_merge.CatalogMergeEstimator`
  (or, when configured for linear storage, one per-inner
  :class:`~repro.estimators.virtual_grid.VirtualGridEstimator` shared
  across outers — the Section 4.3 trade-off is a configuration switch
  here);
* per (table, predicate) — sampled selectivities.

Everything is built on demand and cached, mirroring how a DBMS
materializes statistics on first use.

The manager also owns the engine's *resilience policy*: planning goes
through per-relation fallback chains
(:meth:`StatisticsManager.select_estimator_for_planning`) that degrade
Staircase → Density → Uniform-Model (and configured join technique →
the other technique → Block-Sample) instead of failing, and catalogs
built over a mutated index are rebuilt or rejected per
``staleness_policy``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Literal

import numpy as np

from repro.catalog import CatalogStore
from repro.engine.cache import DEFAULT_CACHE_CELLS, EstimateCache
from repro.engine.expressions import Predicate
from repro.engine.table import SpatialTable
from repro.estimators.base import JoinCostEstimator, SelectCostEstimator
from repro.estimators.block_sample import BlockSampleEstimator
from repro.estimators.catalog_merge import CatalogMergeEstimator
from repro.estimators.density import DensityBasedEstimator
from repro.estimators.staircase import StaircaseEstimator
from repro.estimators.uniform_model import UniformModelEstimator
from repro.estimators.virtual_grid import VirtualGridEstimator
from repro.geometry import Point, Rect
from repro.geometry.hilbert import hilbert_order
from repro.index.snapshot import IndexSnapshot
from repro.optimizer.selection import (
    PhysicalOperatorSelection,
    PinnedOverrideSelection,
    default_selection_chain,
)
from repro.perf import resolve_workers
from repro.resilience.errors import StaleCatalogError
from repro.resilience.fallback import FallbackJoinEstimator, FallbackSelectEstimator

JoinTechnique = Literal["catalog-merge", "virtual-grid"]
StalenessPolicy = Literal["rebuild", "raise"]
SnapshotLayout = Literal["canonical", "hilbert"]


class _ManagedSelectTier(SelectCostEstimator):
    """A chain tier that re-resolves its estimator through the manager.

    The fallback chain caches tier instances, but the manager's
    staleness policy must apply on *every* call (a catalog can go stale
    between two estimates).  Routing each call through the manager
    accessor keeps the rebuild/raise decision in one place.
    """

    def __init__(self, get_estimator: Callable[[], SelectCostEstimator]) -> None:
        self._get = get_estimator

    def estimate(self, query: Point, k: int) -> float:
        return self._get().estimate(query, k)

    def estimate_batch(self, queries, ks):
        # Delegate so the batch stays on the resolved estimator's
        # vectorized path (the ABC default would fall back to a scalar
        # loop through this proxy).
        return self._get().estimate_batch(queries, ks)

    def storage_bytes(self) -> int:
        # The underlying estimator is owned (and its storage counted)
        # by the manager, not by the chain.
        return 0

    @property
    def preprocessing_stats(self):
        """The managed estimator's build instrumentation.

        Resolution can itself fail (stale catalogs under the ``raise``
        policy, an index the estimator refuses) — the chain has already
        degraded past this tier by then, so provenance collection must
        not resurrect the error.
        """
        try:
            estimator = self._get()
        except Exception:
            return None
        return getattr(estimator, "preprocessing_stats", None)


class StatisticsManager:
    """Owns per-table and per-pair estimation state.

    Args:
        max_k: Catalog limit for all built catalogs.
        join_technique: ``"catalog-merge"`` (quadratic catalogs, highest
            accuracy) or ``"virtual-grid"`` (linear catalogs).
        join_sample_size: Sample size for Catalog-Merge preprocessing.
        grid_size: Virtual-grid resolution.
        world_bounds: Fixed universe for virtual grids (must cover every
            relation).
        fallback: Whether planning uses the degrading fallback chains
            (the default) or the raw primary estimators, whose failures
            then propagate (``--strict`` semantics).
        strict: Treat suspicious-but-answerable queries (``k`` larger
            than the relation, far-outside focal points, zero-area
            regions) as errors instead of planning notes.
        staleness_policy: What to do when a cached Staircase catalog is
            found stale — ``"rebuild"`` (drop and rebuild transparently)
            or ``"raise"`` (surface :class:`StaleCatalogError`; the
            fallback chain then degrades to the catalog-free tiers).
        breaker_threshold: Consecutive failures that open a fallback
            tier's circuit breaker.
        breaker_cooldown: Calls a tripped tier is skipped for.
        estimate_time_budget: Per-call wall-clock budget (seconds) for
            one fallback tier; ``None`` disables it.
        workers: Worker processes for catalog preprocessing fan-out
            (``None``/0/1 builds in-process); threaded through to every
            estimator the manager constructs.
        estimate_cache_size: Capacity of the generation-keyed LRU
            estimate cache (:class:`~repro.engine.cache.EstimateCache`).
            0 (the default) disables caching, keeping every estimate an
            exact per-query computation; a positive size lets queries
            sharing a quantized cell and k reuse one estimate.
        estimate_cache_cells: Per-axis quantization resolution of the
            estimate-cache key grid.
        snapshot_layout: Physical row order of cached snapshots —
            ``"hilbert"`` (the default: rows sorted along a Hilbert
            curve over block centers, so MINDIST-ordered walks touch
            near-contiguous memory) or ``"canonical"`` (index-traversal
            order).  Estimates are bit-identical either way; the layout
            only changes memory behavior.
        layout_orders: Optional precomputed Hilbert permutations keyed
            by table name.  A serving coordinator computes the order
            once per table and ships it to every shard worker, which
            then skips recomputing it at snapshot-gather time.  An
            entry whose length does not match the gathered snapshot is
            ignored (the order is recomputed).
        selection_chain: The physical-operator selection chain the
            planner arbitrates plans through
            (:mod:`repro.optimizer.selection`).  ``None`` (the default)
            resolves to :func:`default_selection_chain`, which
            reproduces the legacy planner's decisions bit-for-bit.
        pinned_operators: Forced per-table/per-kind operator choices —
            ``{"table:kind" | "kind" | (table, kind): operator}`` —
            prepended to the chain as a
            :class:`~repro.optimizer.selection.PinnedOverrideSelection`.
            Unlike a chain object, this mapping is plain picklable data,
            so it is the channel sharded serving uses to ship pins to
            spawn-context workers via ``manager_kwargs``.
    """

    def __init__(
        self,
        max_k: int = 1_024,
        join_technique: JoinTechnique = "catalog-merge",
        join_sample_size: int = 400,
        grid_size: int = 10,
        world_bounds: Rect | None = None,
        fallback: bool = True,
        strict: bool = False,
        staleness_policy: StalenessPolicy = "rebuild",
        breaker_threshold: int = 3,
        breaker_cooldown: int = 16,
        estimate_time_budget: float | None = None,
        workers: int | None = None,
        estimate_cache_size: int = 0,
        estimate_cache_cells: int = DEFAULT_CACHE_CELLS,
        snapshot_layout: SnapshotLayout = "hilbert",
        layout_orders: dict[str, np.ndarray] | None = None,
        selection_chain: PhysicalOperatorSelection | None = None,
        pinned_operators: dict | None = None,
    ) -> None:
        if join_technique not in ("catalog-merge", "virtual-grid"):
            raise ValueError(f"unknown join technique {join_technique!r}")
        if staleness_policy not in ("rebuild", "raise"):
            raise ValueError(f"unknown staleness policy {staleness_policy!r}")
        if snapshot_layout not in ("canonical", "hilbert"):
            raise ValueError(f"unknown snapshot layout {snapshot_layout!r}")
        self.workers = resolve_workers(workers)
        self.max_k = max_k
        self.join_technique: JoinTechnique = join_technique
        self.join_sample_size = join_sample_size
        self.grid_size = grid_size
        self.world_bounds = world_bounds
        self.fallback = fallback
        self.strict = strict
        self.staleness_policy: StalenessPolicy = staleness_policy
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.estimate_time_budget = estimate_time_budget
        self.snapshot_layout: SnapshotLayout = snapshot_layout
        self.layout_orders = layout_orders
        self.pinned_operators = dict(pinned_operators) if pinned_operators else {}
        self._selection_chain = selection_chain
        self._resolved_chain: PhysicalOperatorSelection | None = None
        #: Precomputed layout orders actually applied (vs. recomputed) —
        #: lets serving assert the one-compute-per-table contract.
        self.layout_orders_applied = 0
        self._tables: dict[str, SpatialTable] = {}
        self._snapshots: dict[str, IndexSnapshot] = {}
        self._select_estimators: dict[str, StaircaseEstimator] = {}
        self._density_estimators: dict[str, DensityBasedEstimator] = {}
        self._pair_estimators: dict[tuple[str, str], JoinCostEstimator] = {}
        self._grid_estimators: dict[str, VirtualGridEstimator] = {}
        self._selectivities: dict[tuple[str, str], float] = {}
        self._resilient_selects: dict[str, FallbackSelectEstimator] = {}
        self._resilient_joins: dict[tuple[str, str], FallbackJoinEstimator] = {}
        if estimate_cache_size < 0:
            raise ValueError(
                f"estimate_cache_size must be >= 0, got {estimate_cache_size}"
            )
        self.estimate_cache: EstimateCache | None = (
            EstimateCache(estimate_cache_size, cells=estimate_cache_cells)
            if estimate_cache_size
            else None
        )
        #: Per-table generation the estimate cache was last synced at.
        self._cache_generations: dict[str, int] = {}
        #: Entries carried across generation bumps by log-driven
        #: revalidation (vs. dropped because their cell was touched).
        self.cache_entries_carried = 0
        self.cache_entries_dropped = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, table: SpatialTable) -> None:
        """Register a relation (replacing drops its cached statistics)."""
        self._tables[table.name] = table
        self._snapshots.pop(table.name, None)
        self._select_estimators.pop(table.name, None)
        self._density_estimators.pop(table.name, None)
        self._grid_estimators.pop(table.name, None)
        self._resilient_selects.pop(table.name, None)
        self._pair_estimators = {
            pair: est
            for pair, est in self._pair_estimators.items()
            if table.name not in pair
        }
        self._resilient_joins = {
            pair: est
            for pair, est in self._resilient_joins.items()
            if table.name not in pair
        }
        self._selectivities = {
            key: value
            for key, value in self._selectivities.items()
            if key[0] != table.name
        }
        if self.estimate_cache is not None:
            self.estimate_cache.invalidate(table.name)
        self._cache_generations.pop(table.name, None)

    def table(self, name: str) -> SpatialTable:
        """Look up a registered relation.

        Raises:
            KeyError: For unknown names.
        """
        if name not in self._tables:
            raise KeyError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            )
        return self._tables[name]

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all registered relations."""
        return tuple(self._tables)

    # ------------------------------------------------------------------
    # The physical-operator selection chain
    # ------------------------------------------------------------------
    @property
    def selection_chain(self) -> PhysicalOperatorSelection:
        """The chain the planner arbitrates every plan choice through.

        Resolved once: the configured chain (or the default —
        freshness guard → cost arbiter → confidence), with any
        ``pinned_operators`` prepended as a
        :class:`~repro.optimizer.selection.PinnedOverrideSelection` so
        pins run before everything else.
        """
        if self._resolved_chain is None:
            chain = self._selection_chain or default_selection_chain()
            if self.pinned_operators:
                chain = PinnedOverrideSelection(self.pinned_operators).chain_with(
                    chain
                )
            self._resolved_chain = chain
        return self._resolved_chain

    def configure_selection(
        self,
        selection_chain: PhysicalOperatorSelection | None = None,
        pinned_operators: dict | None = None,
    ) -> None:
        """Replace the selection chain and/or operator pins.

        The chain re-resolves lazily on next use, so pins passed here
        are prepended exactly as constructor-time pins would be.
        """
        if selection_chain is not None:
            self._selection_chain = selection_chain
        if pinned_operators is not None:
            self.pinned_operators = dict(pinned_operators)
        self._resolved_chain = None

    def catalog_freshness(self, name: str) -> tuple[int | None, int]:
        """Freshness facts for the chain's guard link, as plain integers.

        Returns:
            ``(catalog_generation, data_generation)`` —
            ``catalog_generation`` is the data generation the table's
            cached Staircase catalogs were built at, or ``None`` when no
            catalogs have been built yet (a build would be fresh).

        Unlike :meth:`select_estimator`, this never resolves or rebuilds
        the estimator, so it cannot raise
        :class:`~repro.resilience.errors.StaleCatalogError` under the
        ``"raise"`` staleness policy — the guard compares the integers
        and demotes instead of crashing the chain.

        Raises:
            KeyError: For unknown table names.
        """
        table = self.table(name)
        data_generation = int(getattr(table.index, "data_generation", 0))
        cached = self._select_estimators.get(name)
        built = None if cached is None else int(cached.built_at_generation)
        return built, data_generation

    def cache_stats(self) -> dict[str, int] | None:
        """Estimate-cache counters for planning contexts (``None`` if off)."""
        cache = self.estimate_cache
        if cache is None:
            return None
        return {
            "hits": cache.hits,
            "misses": cache.misses,
            "entries": len(cache),
        }

    # ------------------------------------------------------------------
    # Snapshot cache: one block-summary gather shared by every estimator
    # ------------------------------------------------------------------
    def snapshot(self, name: str, *, on_stale: StalenessPolicy | None = None) -> IndexSnapshot:
        """The relation's cached :class:`IndexSnapshot` (one per table).

        Every estimator the manager builds consumes this summary, so the
        per-leaf gather happens once per table per data generation.  A
        cached snapshot whose ``data_generation`` no longer matches the
        table's index is stale and handled per ``staleness_policy``.

        Args:
            name: Registered table name.
            on_stale: Per-call staleness override.  The catalog-free
                tiers (density, block-sample) pass ``"rebuild"`` so a
                mutated index degrades to a re-gather instead of an
                error, even under the global ``"raise"`` policy.

        Raises:
            KeyError: For unknown table names.
            StaleCatalogError: Under the ``"raise"`` policy when the
                cached snapshot is stale.
        """
        table = self.table(name)
        current = int(getattr(table.index, "data_generation", 0))
        cached = self._snapshots.get(name)
        if cached is not None and cached.data_generation != current:
            policy = on_stale or self.staleness_policy
            if policy == "raise":
                raise StaleCatalogError(
                    f"snapshot of table {name!r} was gathered at data "
                    f"generation {cached.data_generation}; the index is now "
                    f"at {current} (policy: raise)"
                )
            del self._snapshots[name]
            cached = None
        if cached is None:
            # Any generation bump reached this snapshot: sync the
            # estimate cache over the same generation range before the
            # regather, so dependent cached estimates for untouched
            # regions survive (log-driven revalidation) instead of
            # being orphaned wholesale by the new generation.
            self._sync_cache_generation(name, table, current)
            cached = self._apply_layout(name, IndexSnapshot.from_index(table.index))
            self._snapshots[name] = cached
        return cached

    def _apply_layout(self, name: str, snap: IndexSnapshot) -> IndexSnapshot:
        """Apply the configured physical layout to a fresh snapshot.

        Single-block (and empty) snapshots have nothing to reorder.  A
        precomputed order from ``layout_orders`` is used when its length
        matches the gathered snapshot; otherwise the Hilbert permutation
        is computed here, once per table per data generation.
        """
        if self.snapshot_layout == "canonical" or snap.n_blocks <= 1:
            return snap
        order = None
        if self.layout_orders is not None:
            precomputed = self.layout_orders.get(name)
            if precomputed is not None:
                precomputed = np.asarray(precomputed, dtype=np.int64)
                if precomputed.shape[0] == snap.n_blocks:
                    order = precomputed
                    self.layout_orders_applied += 1
        if order is None:
            order = hilbert_order(snap.centers, snap.bounds)
        return snap.with_layout(order, name=self.snapshot_layout)

    # ------------------------------------------------------------------
    # Estimators (lazy, cached)
    # ------------------------------------------------------------------
    def select_estimator(self, name: str) -> StaircaseEstimator:
        """The Staircase estimator of a relation (built on first use).

        A cached estimator whose catalogs have gone stale (the table's
        index mutated since the build) is rebuilt transparently under
        the default ``staleness_policy="rebuild"``.

        Raises:
            StaleCatalogError: Under ``staleness_policy="raise"`` when
                the cached catalogs are stale.
        """
        cached = self._select_estimators.get(name)
        if cached is not None and cached.is_stale:
            if self.staleness_policy == "raise":
                raise StaleCatalogError(
                    f"catalogs of table {name!r} were built at data "
                    f"generation {cached.built_at_generation}; the index "
                    f"has since mutated (policy: raise)"
                )
            del self._select_estimators[name]
        if name not in self._select_estimators:
            table = self.table(name)
            self._select_estimators[name] = StaircaseEstimator(
                table.index,
                max_k=self.max_k,
                workers=self.workers,
                snapshot=self.snapshot(name),
            )
        return self._select_estimators[name]

    def density_estimator(self, name: str) -> DensityBasedEstimator:
        """The density-based (no-preprocessing) estimator of a relation."""
        if name not in self._density_estimators:
            snapshot = self.snapshot(name, on_stale="rebuild")
            if snapshot.n_blocks == 0:
                # Preserve the empty-table error shape of count_index.
                raise ValueError(f"table {name!r} is empty")
            self._density_estimators[name] = DensityBasedEstimator(snapshot)
        return self._density_estimators[name]

    def join_estimator(self, outer: str, inner: str) -> JoinCostEstimator:
        """The join-cost estimator of an ordered relation pair."""
        pair = (outer, inner)
        if pair not in self._pair_estimators:
            self._pair_estimators[pair] = self._build_join_estimator(
                outer, inner, self.join_technique
            )
        return self._pair_estimators[pair]

    def _build_join_estimator(
        self, outer: str, inner: str, technique: JoinTechnique
    ) -> JoinCostEstimator:
        """Build a join estimator with an explicit technique choice.

        The fallback chain needs the *other* technique as its secondary
        tier regardless of which one is configured as primary.
        """
        self.table(outer)
        self.table(inner)
        if technique == "catalog-merge":
            return CatalogMergeEstimator(
                self.snapshot(outer),
                self.snapshot(inner),
                sample_size=self.join_sample_size,
                max_k=self.max_k,
                workers=self.workers,
            )
        return self._virtual_grid(inner).for_outer(self.snapshot(outer))

    # ------------------------------------------------------------------
    # Resilient estimators: what the planner actually talks to
    # ------------------------------------------------------------------
    def resilient_select_estimator(self, name: str) -> FallbackSelectEstimator:
        """The relation's select fallback chain (built on first use).

        Tiers, in degradation order: Staircase (catalog-backed, routed
        through :meth:`select_estimator` so the staleness policy applies
        per call) → Density (Count-Index only) → Uniform-Model (four
        scalars) → the full-scan block count as the guaranteed bound.

        Raises:
            KeyError: For unknown table names.
        """
        if name not in self._resilient_selects:
            self.table(name)  # unknown names fail fast, as KeyError
            self._resilient_selects[name] = FallbackSelectEstimator(
                tiers=[
                    (
                        "staircase",
                        lambda: _ManagedSelectTier(
                            lambda: self.select_estimator(name)
                        ),
                    ),
                    ("density", lambda: self.density_estimator(name)),
                    (
                        "uniform-model",
                        lambda: UniformModelEstimator(self.table(name).count_index),
                    ),
                ],
                guaranteed_bound=lambda: float(self.table(name).index.num_blocks),
                breaker_threshold=self.breaker_threshold,
                breaker_cooldown=self.breaker_cooldown,
                time_budget_seconds=self.estimate_time_budget,
            )
        return self._resilient_selects[name]

    def resilient_join_estimator(self, outer: str, inner: str) -> FallbackJoinEstimator:
        """The pair's join fallback chain (built on first use).

        Tiers: the configured technique → the other catalog technique →
        Block-Sample (no catalogs, query-time sampling) → the all-pairs
        block product as the guaranteed bound.

        Raises:
            KeyError: For unknown table names.
        """
        pair = (outer, inner)
        if pair not in self._resilient_joins:
            self.table(outer)
            self.table(inner)
            primary: JoinTechnique = self.join_technique
            secondary: JoinTechnique = (
                "virtual-grid" if primary == "catalog-merge" else "catalog-merge"
            )
            self._resilient_joins[pair] = FallbackJoinEstimator(
                tiers=[
                    (primary, lambda: self.join_estimator(outer, inner)),
                    (
                        secondary,
                        lambda: self._build_join_estimator(outer, inner, secondary),
                    ),
                    (
                        "block-sample",
                        lambda: BlockSampleEstimator(
                            self.snapshot(outer, on_stale="rebuild"),
                            self.snapshot(inner, on_stale="rebuild"),
                            sample_size=self.join_sample_size,
                        ),
                    ),
                ],
                guaranteed_bound=lambda: float(
                    self.table(outer).index.num_blocks
                    * self.table(inner).index.num_blocks
                ),
                breaker_threshold=self.breaker_threshold,
                breaker_cooldown=self.breaker_cooldown,
                time_budget_seconds=self.estimate_time_budget,
            )
        return self._resilient_joins[pair]

    def select_estimator_for_planning(self, name: str) -> SelectCostEstimator:
        """What the planner costs selects with (chain, or raw if disabled)."""
        if self.fallback:
            return self.resilient_select_estimator(name)
        return self.select_estimator(name)

    # ------------------------------------------------------------------
    # Cache-aware estimation: the planner's select-cost entry points
    # ------------------------------------------------------------------
    def _sync_cache_generation(self, name: str, table, generation: int) -> None:
        """Move the table's cached estimates to ``generation``.

        Generation-ranged invalidation: when the table's index keeps a
        generation-keyed update log, entries in cells no dirty region
        touched are re-keyed to the new generation (a localized insert
        no longer evicts estimates for untouched regions); entries in
        touched cells are dropped.  Without a log — or when the log's
        history was pruned past our watermark — the table's entries are
        dropped wholesale, which is the pre-existing structural
        behavior.
        """
        cache = self.estimate_cache
        if cache is None:
            return
        known = self._cache_generations.get(name)
        if known is None or known == generation:
            self._cache_generations[name] = generation
            return
        index = table.index
        getter = getattr(index, "dirty_region_items_since", None)
        floor = getattr(index, "log_floor", None)
        if getter is None or floor is None or known < floor:
            self.cache_entries_dropped += cache.invalidate(name)
        else:
            dirty_bounds, __ = getter(known)
            carried, dropped = cache.revalidate(
                name, known, generation, dirty_bounds, index.bounds
            )
            self.cache_entries_carried += carried
            self.cache_entries_dropped += dropped
        self._cache_generations[name] = generation

    def estimate_select_cost(
        self, name: str, estimator: SelectCostEstimator, query: Point, k: int
    ) -> tuple[float, bool | None]:
        """Estimate one select cost, consulting the estimate cache.

        Returns:
            ``(cost, cache_hit)`` — ``cache_hit`` is ``None`` when the
            cache is disabled, so :class:`PlanExplanation` can tell
            "no cache" from "cache miss".
        """
        cache = self.estimate_cache
        if cache is None:
            return estimator.estimate(query, k), None
        table = self.table(name)
        generation = int(getattr(table.index, "data_generation", 0))
        self._sync_cache_generation(name, table, generation)
        key = cache.key(name, generation, query.x, query.y, k, table.index.bounds)
        cached = cache.get(key)
        if cached is not None:
            return cached, True
        value = estimator.estimate(query, k)
        cache.put(key, value)
        return value, False

    def estimate_select_costs_batch(
        self,
        name: str,
        estimator: SelectCostEstimator,
        pts: np.ndarray,
        ks: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray | None, list]:
        """Batched :meth:`estimate_select_cost` over one table's queries.

        With the cache disabled this is exactly one
        ``estimator.estimate_batch`` call.  With it enabled, the probe
        replays the scalar loop's semantics: a query whose key was
        already cached — including by an *earlier query of the same
        batch* — takes that value as a hit, and only first-occurrence
        misses reach the estimator (as one batched call).

        Returns:
            ``(costs, hits, outcomes)`` — ``hits`` is ``None`` when the
            cache is disabled, else a per-query bool mask; ``outcomes``
            holds one per-query
            :class:`~repro.resilience.fallback.FallbackOutcome` (or
            ``None`` for cache hits and raw estimators), so the planner
            can attach the right provenance to every explanation even
            when only a sub-batch reached the estimator.
        """
        cache = self.estimate_cache
        if cache is None:
            costs = np.asarray(estimator.estimate_batch(pts, ks), dtype=float)
            outcomes = self._batch_outcomes(estimator, list(range(pts.shape[0])), pts.shape[0])
            return costs, None, outcomes
        table = self.table(name)
        generation = int(getattr(table.index, "data_generation", 0))
        self._sync_cache_generation(name, table, generation)
        keys = cache.keys_for(name, generation, pts, ks, table.index.bounds)
        m = pts.shape[0]
        costs = np.empty(m, dtype=float)
        hits = np.zeros(m, dtype=bool)
        outcomes: list = [None] * m
        first_of_key: dict[object, int] = {}
        pending: list[int] = []
        aliases: list[tuple[int, int]] = []  # (query, first occurrence)
        for i, key in enumerate(keys):
            if key in first_of_key:
                # The scalar loop would have cached the first
                # occurrence's estimate by now; this query hits it.
                cache.hits += 1
                hits[i] = True
                aliases.append((i, first_of_key[key]))
                continue
            cached = cache.get(key)
            if cached is not None:
                costs[i] = cached
                hits[i] = True
                continue
            first_of_key[key] = i
            pending.append(i)
        if pending:
            idx = np.asarray(pending, dtype=np.int64)
            values = np.asarray(
                estimator.estimate_batch(pts[idx], ks[idx]), dtype=float
            )
            costs[idx] = values
            for i, value in zip(pending, values):
                cache.put(keys[i], float(value))
            for position, outcome in zip(
                pending, self._batch_outcomes(estimator, pending, len(pending))
            ):
                outcomes[position] = outcome
        for i, j in aliases:
            costs[i] = costs[j]
        return costs, hits, outcomes

    @staticmethod
    def _batch_outcomes(
        estimator: SelectCostEstimator, positions: list[int], n: int
    ) -> list:
        """Per-query fallback provenance of the last batch call.

        Raw estimators (``fallback=False``) carry no batch outcome and
        yield ``None`` throughout.
        """
        batch_outcome = getattr(estimator, "last_batch_outcome", None)
        if batch_outcome is None:
            return [None] * len(positions)
        return [batch_outcome.outcome_for(j) for j in range(n)]

    def estimate_select_provenance(
        self, name: str, pts: np.ndarray, ks: np.ndarray
    ) -> tuple[np.ndarray, list[str], list[bool]]:
        """Batched select-cost estimates with per-query tier provenance.

        The data-shard serving tier's estimate round: each shard
        estimates its *local* browse costs and ships per-query
        ``(costs, tiers, degraded)`` to the coordinator, which sums the
        costs and keeps the worst tier across shards — the same labels
        :func:`~repro.engine.planner.plan_select_batch` would attach
        ("estimate-cache" on a cache hit, the answering fallback tier
        otherwise, ``""`` for a raw estimator).
        """
        estimator = self.select_estimator_for_planning(name)
        costs, hits, outcomes = self.estimate_select_costs_batch(
            name, estimator, np.asarray(pts, dtype=float), np.asarray(ks)
        )
        tiers: list[str] = []
        degraded: list[bool] = []
        for j in range(costs.shape[0]):
            if hits is not None and bool(hits[j]):
                tiers.append("estimate-cache")
                degraded.append(False)
            elif outcomes[j] is not None:
                tiers.append(outcomes[j].tier)
                degraded.append(bool(outcomes[j].degraded))
            else:
                tiers.append("")
                degraded.append(False)
        return costs, tiers, degraded

    def join_estimator_for_planning(self, outer: str, inner: str) -> JoinCostEstimator:
        """What the planner costs joins with (chain, or raw if disabled)."""
        if self.fallback:
            return self.resilient_join_estimator(outer, inner)
        return self.join_estimator(outer, inner)

    def _virtual_grid(self, inner: str) -> VirtualGridEstimator:
        """One shared grid catalog set per inner relation."""
        if inner not in self._grid_estimators:
            inner_table = self.table(inner)
            bounds = self.world_bounds or inner_table.index.bounds
            self._grid_estimators[inner] = VirtualGridEstimator(
                self.snapshot(inner),
                bounds=bounds,
                grid_size=self.grid_size,
                max_k=self.max_k,
                workers=self.workers,
            )
        return self._grid_estimators[inner]

    # ------------------------------------------------------------------
    # Selectivities
    # ------------------------------------------------------------------
    def predicate_selectivity(self, name: str, predicate: Predicate | None) -> float:
        """Sampled selectivity of ``predicate`` on relation ``name``."""
        if predicate is None:
            return 1.0
        key = (name, repr(predicate))
        if key not in self._selectivities:
            self._selectivities[key] = predicate.estimate_selectivity(self.table(name))
        return self._selectivities[key]

    def region_selectivity(self, name: str, region: Rect | None) -> float:
        """Estimated fraction of rows inside ``region`` (1.0 when None).

        Clamped away from zero — the optimizer divides by it.
        """
        if region is None:
            return 1.0
        table = self.table(name)
        if table.n_rows == 0:
            return 1.0
        selectivity = table.count_index.estimate_range_selectivity(region)
        return max(selectivity, 1.0 / table.n_rows)

    # ------------------------------------------------------------------
    # Persistence: build catalogs offline once, load at engine startup.
    # ------------------------------------------------------------------
    def save_select_catalogs(self, directory: str | Path) -> list[str]:
        """Persist every built Staircase estimator; returns saved names."""
        directory = Path(directory)
        saved = []
        for name, estimator in self._select_estimators.items():
            estimator.to_store().save(directory / f"{name}.staircase.bin")
            saved.append(name)
        return saved

    def load_select_catalogs(self, directory: str | Path) -> list[str]:
        """Load persisted Staircase catalogs for registered tables.

        Tables without a matching file (or whose index no longer
        matches the stored catalogs) are skipped and will be rebuilt
        lazily; returns the names actually loaded.
        """
        directory = Path(directory)
        loaded = []
        for name in self._tables:
            path = directory / f"{name}.staircase.bin"
            if not path.exists():
                continue
            try:
                store = CatalogStore.load(path)
                self._select_estimators[name] = StaircaseEstimator.from_store(
                    self._tables[name].index, store
                )
                loaded.append(name)
            except (ValueError, StaleCatalogError):
                # Corrupt bytes (CatalogCorruptError is a ValueError) or
                # a store built at an older data generation: skip it and
                # rebuild lazily on next use.
                continue
        return loaded

    def total_catalog_bytes(self) -> int:
        """Storage of every catalog built so far (monitoring hook)."""
        total = sum(e.storage_bytes() for e in self._select_estimators.values())
        total += sum(e.storage_bytes() for e in self._grid_estimators.values())
        total += sum(
            e.storage_bytes()
            for pair, e in self._pair_estimators.items()
            if self.join_technique == "catalog-merge"
        )
        return total
