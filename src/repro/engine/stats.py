"""The statistics manager: catalogs and estimators per relation.

A query optimizer "keeps a set of catalog information that summarizes
the cost estimates" (Section 2).  The statistics manager owns exactly
that state for the engine:

* per table — the Count-Index and a lazily built
  :class:`~repro.estimators.staircase.StaircaseEstimator`;
* per ordered table pair — a lazily built
  :class:`~repro.estimators.catalog_merge.CatalogMergeEstimator`
  (or, when configured for linear storage, one per-inner
  :class:`~repro.estimators.virtual_grid.VirtualGridEstimator` shared
  across outers — the Section 4.3 trade-off is a configuration switch
  here);
* per (table, predicate) — sampled selectivities.

Everything is built on demand and cached, mirroring how a DBMS
materializes statistics on first use.
"""

from __future__ import annotations

from pathlib import Path
from typing import Literal

from repro.catalog import CatalogStore
from repro.engine.expressions import Predicate
from repro.engine.table import SpatialTable
from repro.estimators.base import JoinCostEstimator
from repro.estimators.catalog_merge import CatalogMergeEstimator
from repro.estimators.density import DensityBasedEstimator
from repro.estimators.staircase import StaircaseEstimator
from repro.estimators.virtual_grid import VirtualGridEstimator
from repro.geometry import Rect

JoinTechnique = Literal["catalog-merge", "virtual-grid"]


class StatisticsManager:
    """Owns per-table and per-pair estimation state.

    Args:
        max_k: Catalog limit for all built catalogs.
        join_technique: ``"catalog-merge"`` (quadratic catalogs, highest
            accuracy) or ``"virtual-grid"`` (linear catalogs).
        join_sample_size: Sample size for Catalog-Merge preprocessing.
        grid_size: Virtual-grid resolution.
        world_bounds: Fixed universe for virtual grids (must cover every
            relation).
    """

    def __init__(
        self,
        max_k: int = 1_024,
        join_technique: JoinTechnique = "catalog-merge",
        join_sample_size: int = 400,
        grid_size: int = 10,
        world_bounds: Rect | None = None,
    ) -> None:
        if join_technique not in ("catalog-merge", "virtual-grid"):
            raise ValueError(f"unknown join technique {join_technique!r}")
        self.max_k = max_k
        self.join_technique: JoinTechnique = join_technique
        self.join_sample_size = join_sample_size
        self.grid_size = grid_size
        self.world_bounds = world_bounds
        self._tables: dict[str, SpatialTable] = {}
        self._select_estimators: dict[str, StaircaseEstimator] = {}
        self._density_estimators: dict[str, DensityBasedEstimator] = {}
        self._pair_estimators: dict[tuple[str, str], JoinCostEstimator] = {}
        self._grid_estimators: dict[str, VirtualGridEstimator] = {}
        self._selectivities: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, table: SpatialTable) -> None:
        """Register a relation (replacing drops its cached statistics)."""
        self._tables[table.name] = table
        self._select_estimators.pop(table.name, None)
        self._density_estimators.pop(table.name, None)
        self._grid_estimators.pop(table.name, None)
        self._pair_estimators = {
            pair: est
            for pair, est in self._pair_estimators.items()
            if table.name not in pair
        }
        self._selectivities = {
            key: value
            for key, value in self._selectivities.items()
            if key[0] != table.name
        }

    def table(self, name: str) -> SpatialTable:
        """Look up a registered relation.

        Raises:
            KeyError: For unknown names.
        """
        if name not in self._tables:
            raise KeyError(
                f"unknown table {name!r}; registered: {sorted(self._tables)}"
            )
        return self._tables[name]

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all registered relations."""
        return tuple(self._tables)

    # ------------------------------------------------------------------
    # Estimators (lazy, cached)
    # ------------------------------------------------------------------
    def select_estimator(self, name: str) -> StaircaseEstimator:
        """The Staircase estimator of a relation (built on first use)."""
        if name not in self._select_estimators:
            table = self.table(name)
            self._select_estimators[name] = StaircaseEstimator(
                table.index, max_k=self.max_k
            )
        return self._select_estimators[name]

    def density_estimator(self, name: str) -> DensityBasedEstimator:
        """The density-based (no-preprocessing) estimator of a relation."""
        if name not in self._density_estimators:
            self._density_estimators[name] = DensityBasedEstimator(
                self.table(name).count_index
            )
        return self._density_estimators[name]

    def join_estimator(self, outer: str, inner: str) -> JoinCostEstimator:
        """The join-cost estimator of an ordered relation pair."""
        pair = (outer, inner)
        if pair not in self._pair_estimators:
            outer_table = self.table(outer)
            inner_table = self.table(inner)
            if self.join_technique == "catalog-merge":
                estimator: JoinCostEstimator = CatalogMergeEstimator(
                    outer_table.index,
                    inner_table.count_index,
                    sample_size=self.join_sample_size,
                    max_k=self.max_k,
                )
            else:
                estimator = self._virtual_grid(inner).for_outer(
                    outer_table.count_index
                )
            self._pair_estimators[pair] = estimator
        return self._pair_estimators[pair]

    def _virtual_grid(self, inner: str) -> VirtualGridEstimator:
        """One shared grid catalog set per inner relation."""
        if inner not in self._grid_estimators:
            inner_table = self.table(inner)
            bounds = self.world_bounds or inner_table.index.bounds
            self._grid_estimators[inner] = VirtualGridEstimator(
                inner_table.count_index,
                bounds=bounds,
                grid_size=self.grid_size,
                max_k=self.max_k,
            )
        return self._grid_estimators[inner]

    # ------------------------------------------------------------------
    # Selectivities
    # ------------------------------------------------------------------
    def predicate_selectivity(self, name: str, predicate: Predicate | None) -> float:
        """Sampled selectivity of ``predicate`` on relation ``name``."""
        if predicate is None:
            return 1.0
        key = (name, repr(predicate))
        if key not in self._selectivities:
            self._selectivities[key] = predicate.estimate_selectivity(self.table(name))
        return self._selectivities[key]

    def region_selectivity(self, name: str, region: Rect | None) -> float:
        """Estimated fraction of rows inside ``region`` (1.0 when None).

        Clamped away from zero — the optimizer divides by it.
        """
        if region is None:
            return 1.0
        table = self.table(name)
        if table.n_rows == 0:
            return 1.0
        selectivity = table.count_index.estimate_range_selectivity(region)
        return max(selectivity, 1.0 / table.n_rows)

    # ------------------------------------------------------------------
    # Persistence: build catalogs offline once, load at engine startup.
    # ------------------------------------------------------------------
    def save_select_catalogs(self, directory: str | Path) -> list[str]:
        """Persist every built Staircase estimator; returns saved names."""
        directory = Path(directory)
        saved = []
        for name, estimator in self._select_estimators.items():
            estimator.to_store().save(directory / f"{name}.staircase.bin")
            saved.append(name)
        return saved

    def load_select_catalogs(self, directory: str | Path) -> list[str]:
        """Load persisted Staircase catalogs for registered tables.

        Tables without a matching file (or whose index no longer
        matches the stored catalogs) are skipped and will be rebuilt
        lazily; returns the names actually loaded.
        """
        directory = Path(directory)
        loaded = []
        for name in self._tables:
            path = directory / f"{name}.staircase.bin"
            if not path.exists():
                continue
            try:
                store = CatalogStore.load(path)
                self._select_estimators[name] = StaircaseEstimator.from_store(
                    self._tables[name].index, store
                )
                loaded.append(name)
            except ValueError:
                continue  # stale store: rebuild lazily on next use
        return loaded

    def total_catalog_bytes(self) -> int:
        """Storage of every catalog built so far (monitoring hook)."""
        total = sum(e.storage_bytes() for e in self._select_estimators.values())
        total += sum(e.storage_bytes() for e in self._grid_estimators.values())
        total += sum(
            e.storage_bytes()
            for pair, e in self._pair_estimators.items()
            if self.join_technique == "catalog-merge"
        )
        return total
