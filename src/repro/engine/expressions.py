"""Relational predicate expressions over table attributes.

The paper's motivating queries combine k-NN operators with relational
predicates ("price within my budget", "provides seafood").  Predicates
here are small composable expression trees evaluated vectorized over
row sets, with selectivity estimated by sampling — the input the
optimizer needs to cost the incremental-browsing plan (``k' = k / σ``).

Usage::

    from repro.engine import column
    pred = (column("price") < 50.0) & (column("stars") >= 4)
    mask = pred.evaluate(table, row_ids)
    sigma = pred.estimate_selectivity(table)
"""

from __future__ import annotations

import abc
import operator
from typing import Callable

import numpy as np

from repro.engine.table import SpatialTable

_OPS: dict[str, Callable[[np.ndarray, object], np.ndarray]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

#: Default sample size for selectivity estimation.
SELECTIVITY_SAMPLE = 2_000


class Predicate(abc.ABC):
    """A boolean expression over a table's attribute columns."""

    @abc.abstractmethod
    def evaluate(self, table: SpatialTable, row_ids: np.ndarray) -> np.ndarray:
        """Vectorized evaluation: a boolean mask aligned with ``row_ids``."""

    @abc.abstractmethod
    def columns(self) -> frozenset[str]:
        """The attribute columns the predicate reads."""

    def evaluate_row(self, table: SpatialTable, row_id: int) -> bool:
        """Evaluate on a single row (the on-the-fly browsing path)."""
        return bool(self.evaluate(table, np.array([row_id]))[0])

    def estimate_selectivity(
        self, table: SpatialTable, sample_size: int = SELECTIVITY_SAMPLE, seed: int = 0
    ) -> float:
        """Estimate the qualifying fraction by uniform row sampling.

        Returns a value clamped into ``(0, 1]`` — a zero estimate would
        make the incremental plan's effective k infinite, so the floor
        is one qualifying row in the sample.
        """
        if table.n_rows == 0:
            return 1.0
        rng = np.random.default_rng(seed)
        n = min(sample_size, table.n_rows)
        rows = rng.choice(table.n_rows, size=n, replace=False)
        hits = int(np.count_nonzero(self.evaluate(table, rows)))
        return max(hits, 1) / n

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


class AttributePredicate(Predicate):
    """A comparison of one attribute column against a constant.

    Args:
        column: Column name.
        op: One of ``< <= > >= == !=``.
        value: The constant to compare with.
    """

    def __init__(self, column: str, op: str, value) -> None:
        if op not in _OPS:
            raise ValueError(f"unknown operator {op!r}; expected one of {sorted(_OPS)}")
        self.column = column
        self.op = op
        self.value = value

    def evaluate(self, table: SpatialTable, row_ids: np.ndarray) -> np.ndarray:
        values = table.column_values(self.column)[row_ids]
        return _OPS[self.op](values, self.value)

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"


class And(Predicate):
    """Conjunction of two predicates."""

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def evaluate(self, table: SpatialTable, row_ids: np.ndarray) -> np.ndarray:
        return self.left.evaluate(table, row_ids) & self.right.evaluate(table, row_ids)

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


class Or(Predicate):
    """Disjunction of two predicates."""

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    def evaluate(self, table: SpatialTable, row_ids: np.ndarray) -> np.ndarray:
        return self.left.evaluate(table, row_ids) | self.right.evaluate(table, row_ids)

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


class Not(Predicate):
    """Negation of a predicate."""

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def evaluate(self, table: SpatialTable, row_ids: np.ndarray) -> np.ndarray:
        return ~self.inner.evaluate(table, row_ids)

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


class _ColumnBuilder:
    """Fluent builder: ``column("price") < 50`` -> AttributePredicate."""

    def __init__(self, name: str) -> None:
        self._name = name

    def __lt__(self, value) -> AttributePredicate:
        return AttributePredicate(self._name, "<", value)

    def __le__(self, value) -> AttributePredicate:
        return AttributePredicate(self._name, "<=", value)

    def __gt__(self, value) -> AttributePredicate:
        return AttributePredicate(self._name, ">", value)

    def __ge__(self, value) -> AttributePredicate:
        return AttributePredicate(self._name, ">=", value)

    def __eq__(self, value) -> AttributePredicate:  # type: ignore[override]
        return AttributePredicate(self._name, "==", value)

    def __ne__(self, value) -> AttributePredicate:  # type: ignore[override]
        return AttributePredicate(self._name, "!=", value)

    def __hash__(self) -> int:  # __eq__ override disables default hash
        return hash(self._name)


def column(name: str) -> _ColumnBuilder:
    """Start a predicate on attribute ``name`` (see module docstring)."""
    return _ColumnBuilder(name)
