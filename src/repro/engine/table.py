"""Attribute-carrying spatial tables.

A :class:`SpatialTable` is the engine's base relation: an ``(n, 2)``
point array, named attribute columns aligned with the points, and a
quadtree index over the locations.  Because the quadtree reorders the
points into blocks, each block remembers the original row positions so
attribute lookups stay aligned; the table keeps a parallel "block row
map" from (block, offset) to row id.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.index.base import validate_points
from repro.index.count_index import CountIndex
from repro.index.quadtree import Quadtree


class SpatialTable:
    """A named spatial relation with attribute columns.

    Args:
        name: Relation name (used in plans and statistics keys).
        points: ``(n, 2)`` point locations.
        attributes: Mapping of column name to an ``(n,)`` array aligned
            with ``points``.
        capacity: Leaf capacity of the table's quadtree index.

    Raises:
        ValueError: On misaligned columns or invalid points.
    """

    def __init__(
        self,
        name: str,
        points,
        attributes: Mapping[str, np.ndarray] | None = None,
        capacity: int = 256,
    ) -> None:
        if not name:
            raise ValueError("tables need a non-empty name")
        pts = validate_points(points)
        self.name = name
        self._points = pts
        self._attributes: dict[str, np.ndarray] = {}
        for column, values in (attributes or {}).items():
            arr = np.asarray(values)
            if arr.shape != (pts.shape[0],):
                raise ValueError(
                    f"column {column!r} has shape {arr.shape}, expected "
                    f"({pts.shape[0]},)"
                )
            self._attributes[column] = arr
        # Index the points tagged with their row ids so blocks can map
        # back to attribute rows: the quadtree partitions an (n, 3)
        # array's first two columns... instead we index (x, y) and keep
        # a row-id column by indexing an augmented array and slicing.
        if pts.shape[0]:
            augmented = np.column_stack([pts, np.arange(pts.shape[0], dtype=float)])
            self._index = _RowTaggedQuadtree(augmented, capacity=capacity)
        else:
            self._index = _RowTaggedQuadtree(np.empty((0, 3)), capacity=capacity)
        self._count_index = CountIndex.from_index(self._index) if pts.shape[0] else None

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows (points)."""
        return int(self._points.shape[0])

    @property
    def points(self) -> np.ndarray:
        """The ``(n, 2)`` location array in row order."""
        return self._points

    @property
    def columns(self) -> tuple[str, ...]:
        """Names of the attribute columns."""
        return tuple(self._attributes)

    @property
    def index(self) -> Quadtree:
        """The table's quadtree index (blocks carry row ids)."""
        return self._index

    @property
    def count_index(self) -> CountIndex:
        """The table's Count-Index.

        Raises:
            ValueError: For an empty table (no blocks to count).
        """
        if self._count_index is None:
            raise ValueError(f"table {self.name!r} is empty")
        return self._count_index

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def column_values(self, column: str) -> np.ndarray:
        """The full value array of ``column`` in row order.

        Raises:
            KeyError: If the column does not exist.
        """
        if column not in self._attributes:
            raise KeyError(
                f"table {self.name!r} has no column {column!r}; "
                f"available: {sorted(self._attributes)}"
            )
        return self._attributes[column]

    def block_row_ids(self, block_id: int) -> np.ndarray:
        """Original row ids of the points in block ``block_id``."""
        return self._index.row_ids_for(block_id)

    def rows(self, row_ids: np.ndarray) -> dict[str, np.ndarray]:
        """Materialize locations and attributes for the given rows."""
        out: dict[str, np.ndarray] = {
            "x": self._points[row_ids, 0],
            "y": self._points[row_ids, 1],
        }
        for column, values in self._attributes.items():
            out[column] = values[row_ids]
        return out


class _RowTaggedQuadtree(Quadtree):
    """A quadtree that remembers each block's original row ids.

    The quadtree split is a pure function of (x, y) and the bounds, so
    re-running the same deterministic partition over (x, y, row_id)
    rows reproduces every block's membership in construction order; the
    tags are collected per block without touching the (immutable) block
    objects.
    """

    def __init__(self, augmented: np.ndarray, capacity: int) -> None:
        self._augmented = augmented
        super().__init__(
            augmented[:, :2] if augmented.size else np.empty((0, 2)),
            capacity=capacity,
        )
        self._row_ids: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for __ in self.blocks
        ]
        self._attach_row_ids()

    def row_ids_for(self, block_id: int) -> np.ndarray:
        """Original row ids of the points in block ``block_id``."""
        return self._row_ids[block_id]

    def _attach_row_ids(self) -> None:
        """Recompute the partition over (x, y, row) and collect tags."""
        if self._augmented.shape[0] == 0:
            return
        next_block = iter(range(len(self.blocks)))

        def recurse(rows: np.ndarray, rect, depth: int) -> None:
            if rows.shape[0] <= self.capacity or depth >= self._max_depth:
                if rows.shape[0]:
                    block_id = next(next_block)
                    self._row_ids[block_id] = rows[:, 2].astype(np.int64)
                return
            cx = (rect.x_min + rect.x_max) / 2.0
            cy = (rect.y_min + rect.y_max) / 2.0
            west = rows[:, 0] < cx
            south = rows[:, 1] < cy
            for mask, quadrant in zip(
                (west & south, ~west & south, west & ~south, ~west & ~south),
                rect.quadrants(),
            ):
                recurse(rows[mask], quadrant, depth + 1)

        recurse(self._augmented, self.bounds, 0)
