"""Executable physical operators.

Every operator executes one query specification and reports the number
of index blocks it scanned — the unit of the paper's cost model — so
planner decisions can be validated against actual costs.

k-NN-Select operators (the two QEPs of Section 1):

* :class:`FilterThenKnnOperator` — full scan, filter, exact k-NN.
* :class:`IncrementalKnnOperator` — distance browsing with predicates
  evaluated on the fly, stopping at k qualifying rows.

k-NN-Join operators:

* :class:`LocalityJoinOperator` — block-by-block locality join
  (predicates handled by inflating k to ``k / σ`` before the per-point
  top-k filter).
* :class:`PerPointSelectsOperator` — one incremental k-NN-Select per
  outer row (wins for small outer relations).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.engine.queries import KnnJoinQuery, KnnSelectQuery, RangeQuery
from repro.engine.table import SpatialTable
from repro.geometry import Point, Rect, mindist_point_rect, mindist_points_rects
from repro.geometry.kernels import tie_stable_argsort
from repro.knn.locality import locality_block_indices


@dataclass
class ExecutionResult:
    """Outcome of running a physical operator.

    Attributes:
        operator: Name of the operator that produced the result.
        blocks_scanned: Number of index blocks read (the paper's cost).
        row_ids: For selects: qualifying row ids in distance order.
        join_pairs: For joins: list of ``(outer_row_id, inner_row_ids)``
            with inner ids in distance order.
    """

    operator: str
    blocks_scanned: int
    row_ids: np.ndarray | None = None
    join_pairs: list[tuple[int, np.ndarray]] = field(default_factory=list)

    @property
    def n_results(self) -> int:
        """Number of result rows (select) or outer rows (join)."""
        if self.row_ids is not None:
            return int(self.row_ids.shape[0])
        return len(self.join_pairs)


def _qualifies(table: SpatialTable, query: KnnSelectQuery, row_id: int) -> bool:
    """Whether one row passes the query's spatial and relational filters."""
    if query.region is not None:
        x, y = table.points[row_id]
        if not query.region.contains_point(Point(float(x), float(y))):
            return False
    if query.predicate is not None:
        return query.predicate.evaluate_row(table, row_id)
    return True


class FilterThenKnnOperator:
    """QEP (i): filter everything first, then take the k closest.

    Scans every block of the relation (the relational/spatial filters
    have no index support in this engine), so its cost is the block
    count — independent of k.
    """

    name = "filter-then-knn"

    def __init__(self, table: SpatialTable, query: KnnSelectQuery) -> None:
        self._table = table
        self._query = query

    def execute(self) -> ExecutionResult:
        """Scan every block, filter, then answer the k-NN exactly."""
        table, query = self._table, self._query
        scanned = 0
        qualifying: list[np.ndarray] = []
        for block in table.index.blocks:
            scanned += 1
            row_ids = table.block_row_ids(block.block_id)
            mask = np.ones(row_ids.shape[0], dtype=bool)
            if query.region is not None:
                pts = table.points[row_ids]
                mask &= (
                    (pts[:, 0] >= query.region.x_min)
                    & (pts[:, 0] <= query.region.x_max)
                    & (pts[:, 1] >= query.region.y_min)
                    & (pts[:, 1] <= query.region.y_max)
                )
            if query.predicate is not None:
                mask &= query.predicate.evaluate(table, row_ids)
            if mask.any():
                qualifying.append(row_ids[mask])
        if not qualifying:
            return ExecutionResult(self.name, scanned, row_ids=np.empty(0, dtype=np.int64))
        rows = np.concatenate(qualifying)
        pts = table.points[rows]
        dists = np.hypot(pts[:, 0] - query.query.x, pts[:, 1] - query.query.y)
        order = np.argsort(dists, kind="stable")[: query.k]
        return ExecutionResult(self.name, scanned, row_ids=rows[order])


class IncrementalKnnOperator:
    """QEP (ii): distance browsing with on-the-fly filtering."""

    name = "incremental-knn"

    def __init__(self, table: SpatialTable, query: KnnSelectQuery) -> None:
        self._table = table
        self._query = query

    def execute(self) -> ExecutionResult:
        """Browse neighbors in distance order until k rows qualify."""
        table, query = self._table, self._query
        browser = _RowDistanceBrowser(table, query.query)
        found: list[int] = []
        for row_id in browser:
            if _qualifies(table, query, row_id):
                found.append(row_id)
                if len(found) == query.k:
                    break
        return ExecutionResult(
            self.name,
            browser.blocks_scanned,
            row_ids=np.array(found, dtype=np.int64),
        )


def execute_incremental_knn_batch(
    table: SpatialTable, queries: list[KnnSelectQuery], snapshot
) -> list[ExecutionResult]:
    """Execute unfiltered incremental k-NN selects as one vectorized pass.

    Query by query this produces *exactly* what
    ``IncrementalKnnOperator(table, q).execute()`` produces — the same
    ``row_ids`` in the same order and the same ``blocks_scanned`` — but
    the per-query heap browsing is replaced by batch work shared across
    the group: one ``(m, n)`` MINDIST tableau over the snapshot's leaf
    rects, one row-id/point gather per block, and a per-query prefix
    drain over the MINDIST-sorted blocks.

    Equivalence rests on two properties of the heap browser: leaf blocks
    are scanned in MINDIST order (a child's MINDIST is never below its
    parent's, so heap pops are monotone), and a block is scanned iff
    fewer than ``k`` already-gathered rows lie *strictly* closer than
    its MINDIST (the browser's ``tuples[0][0] < blocks[0][0]`` test).
    Emitted rows are then the ``k`` smallest distances in (distance,
    scan order) — a stable argsort over the drained prefix.  Stop
    thresholds are recomputed with the scalar
    :func:`~repro.geometry.mindist_point_rect` so they carry exactly the
    floats the browser compares against.

    Only applicable to predicate-free, region-free queries (on-the-fly
    filtering re-introduces per-row control flow); the engine routes
    everything else through the scalar operator.

    Args:
        table: The (shared) relation every query targets.
        queries: The group's queries, in serving order.
        snapshot: The table's current
            :class:`~repro.index.snapshot.IndexSnapshot` (its rects are
            the browser's leaf node rects).
    """
    name = IncrementalKnnOperator.name
    n = snapshot.n_blocks
    if n == 0:
        return [
            ExecutionResult(name, 0, row_ids=np.empty(0, dtype=np.int64))
            for __ in queries
        ]
    pts = np.array([[q.query.x, q.query.y] for q in queries], dtype=float)
    tableau = mindist_points_rects(pts, snapshot.rects)
    # Tie-corrected so the scan sequence (and hence equal-distance row
    # emission order) matches the canonical layout's regardless of the
    # snapshot's physical row order.
    order = tie_stable_argsort(tableau, getattr(snapshot, "tie_order", None))
    counts = snapshot.counts
    starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    all_rows = np.concatenate(
        [table.block_row_ids(int(b)) for b in snapshot.block_ids]
    )
    all_pts = table.points[all_rows]
    rect_cache: dict[int, Rect] = {}
    results: list[ExecutionResult] = []
    for i, query in enumerate(queries):
        k = query.k
        qx, qy = query.query.x, query.query.y
        sel = order[i]
        cum = np.cumsum(counts[sel])
        # The browser cannot stop before the prefix holds k rows.
        j = min(int(np.searchsorted(cum, k, side="left")) + 1, n)
        row_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        for b in sel[:j]:
            s, e = starts[b], starts[b + 1]
            row_parts.append(all_rows[s:e])
            dist_parts.append(
                np.hypot(all_pts[s:e, 0] - qx, all_pts[s:e, 1] - qy)
            )
        while j < n:
            b_next = int(sel[j])
            rect = rect_cache.get(b_next)
            if rect is None:
                rect = rect_cache[b_next] = Rect(*snapshot.rects[b_next])
            threshold = mindist_point_rect(query.query, rect)
            below = sum(
                int(np.count_nonzero(part < threshold)) for part in dist_parts
            )
            if below >= k:
                break
            s, e = starts[b_next], starts[b_next + 1]
            row_parts.append(all_rows[s:e])
            dist_parts.append(
                np.hypot(all_pts[s:e, 0] - qx, all_pts[s:e, 1] - qy)
            )
            j += 1
        rows = np.concatenate(row_parts)
        dists = np.concatenate(dist_parts)
        take = np.argsort(dists, kind="stable")[:k]
        results.append(ExecutionResult(name, j, row_ids=rows[take]))
    return results


class RegionPrunedKnnOperator:
    """QEP (iii): distance browsing that prunes blocks outside a region.

    For a region-constrained k-NN the plain incremental plan still
    scans blocks that cannot contain answers (they pass the MINDIST
    test but miss the region).  This operator adds the region to the
    block admission test, so its cost is bounded by the number of
    blocks overlapping the region — often far below both other plans.

    Only applicable when ``query.region`` is set.
    """

    name = "region-pruned-knn"

    def __init__(self, table: SpatialTable, query: KnnSelectQuery) -> None:
        if query.region is None:
            raise ValueError("region-pruned browsing needs a region")
        self._table = table
        self._query = query

    def execute(self) -> ExecutionResult:
        """Browse with region pruning until k rows qualify."""
        table, query = self._table, self._query
        browser = _RowDistanceBrowser(table, query.query, region=query.region)
        found: list[int] = []
        for row_id in browser:
            if _qualifies(table, query, row_id):
                found.append(row_id)
                if len(found) == query.k:
                    break
        return ExecutionResult(
            self.name,
            browser.blocks_scanned,
            row_ids=np.array(found, dtype=np.int64),
        )


class _RowDistanceBrowser:
    """Distance browsing over a table, yielding *row ids* in order.

    Identical to :class:`repro.knn.DistanceBrowser` except tuples carry
    row ids so attribute predicates can be evaluated per result, and an
    optional region prunes non-overlapping subtrees.
    """

    def __init__(self, table: SpatialTable, query: Point, region=None) -> None:
        self._region = region
        self._table = table
        self._query = query
        self._counter = itertools.count()
        self._blocks: list[tuple[float, int, object]] = []
        self._tuples: list[tuple[float, int, int]] = []
        self.blocks_scanned = 0
        root = table.index.root
        heapq.heappush(
            self._blocks, (mindist_point_rect(query, root.rect), next(self._counter), root)
        )

    def __iter__(self):
        return self

    def __next__(self) -> int:
        while True:
            if self._tuples and (
                not self._blocks or self._tuples[0][0] < self._blocks[0][0]
            ):
                return heapq.heappop(self._tuples)[2]
            if not self._blocks:
                raise StopIteration
            __, __, node = heapq.heappop(self._blocks)
            if node.is_leaf:
                block = node.block
                if block is None:
                    continue
                if self._region is not None and not block.rect.intersects(
                    self._region
                ):
                    continue
                self.blocks_scanned += 1
                row_ids = self._table.block_row_ids(block.block_id)
                dists = block.distances_from(self._query)
                for dist, row_id in zip(dists, row_ids):
                    heapq.heappush(
                        self._tuples, (float(dist), next(self._counter), int(row_id))
                    )
            else:
                for child in node.children:
                    if self._region is not None and not child.rect.intersects(
                        self._region
                    ):
                        continue  # nothing qualifying can live there
                    heapq.heappush(
                        self._blocks,
                        (
                            mindist_point_rect(self._query, child.rect),
                            next(self._counter),
                            child,
                        ),
                    )


class IndexRangeScanOperator:
    """Range select via the spatial index: scan only overlapping blocks.

    The fixed-region counterpart of the k-NN operators — "the spatial
    region ... is predefined and fixed in the query", so the index
    prunes exactly and the cost is the number of overlapping blocks.
    """

    name = "index-range-scan"

    def __init__(self, table: SpatialTable, query: RangeQuery) -> None:
        self._table = table
        self._query = query

    def execute(self) -> ExecutionResult:
        """Scan only the blocks overlapping the region, then filter."""
        table, query = self._table, self._query
        scanned = 0
        qualifying: list[np.ndarray] = []
        for block in table.index.range_query_blocks(query.region):
            scanned += 1
            row_ids = table.block_row_ids(block.block_id)
            pts = table.points[row_ids]
            mask = (
                (pts[:, 0] >= query.region.x_min)
                & (pts[:, 0] <= query.region.x_max)
                & (pts[:, 1] >= query.region.y_min)
                & (pts[:, 1] <= query.region.y_max)
            )
            if query.predicate is not None:
                mask &= query.predicate.evaluate(table, row_ids)
            if mask.any():
                qualifying.append(row_ids[mask])
        rows = (
            np.concatenate(qualifying)
            if qualifying
            else np.empty(0, dtype=np.int64)
        )
        return ExecutionResult(self.name, scanned, row_ids=rows)


class LocalityJoinOperator:
    """Block-by-block locality k-NN-Join with optional inner predicate.

    With a predicate of selectivity σ, localities are computed at the
    inflated ``k' = ceil(k / σ)`` so that, in expectation, enough
    qualifying inner rows fall inside each locality; the per-point
    top-k then filters exactly.  (A guarantee would require predicate-
    aware counts; the planner treats this operator as approximate when
    a predicate is present, and the tests measure its recall.)
    """

    name = "locality-join"

    def __init__(
        self,
        outer: SpatialTable,
        inner: SpatialTable,
        query: KnnJoinQuery,
        selectivity: float = 1.0,
    ) -> None:
        if not 0.0 < selectivity <= 1.0:
            raise ValueError(f"selectivity must be in (0, 1], got {selectivity}")
        self._outer = outer
        self._inner = inner
        self._query = query
        self._selectivity = selectivity

    def execute(self) -> ExecutionResult:
        """Run the block-by-block locality join."""
        outer, inner, query = self._outer, self._inner, self._query
        inner_counts = inner.count_index
        k_effective = min(
            math.ceil(query.k / self._selectivity), max(inner.n_rows, 1)
        )
        scanned = 0
        pairs: list[tuple[int, np.ndarray]] = []
        for block in outer.index.blocks:
            locality = locality_block_indices(inner_counts, block.rect, k_effective)
            scanned += int(locality.shape[0])
            candidate_rows = np.concatenate(
                [inner.block_row_ids(i) for i in locality]
            ) if locality.size else np.empty(0, dtype=np.int64)
            if query.inner_predicate is not None and candidate_rows.size:
                mask = query.inner_predicate.evaluate(inner, candidate_rows)
                candidate_rows = candidate_rows[mask]
            outer_rows = outer.block_row_ids(block.block_id)
            if candidate_rows.size == 0:
                pairs.extend(
                    (int(r), np.empty(0, dtype=np.int64)) for r in outer_rows
                )
                continue
            cand_pts = inner.points[candidate_rows]
            outer_pts = outer.points[outer_rows]
            dx = outer_pts[:, 0, None] - cand_pts[None, :, 0]
            dy = outer_pts[:, 1, None] - cand_pts[None, :, 1]
            dists = np.hypot(dx, dy)
            k_eff = min(query.k, candidate_rows.shape[0])
            if k_eff < candidate_rows.shape[0]:
                top = np.argpartition(dists, k_eff - 1, axis=1)[:, :k_eff]
            else:
                top = np.broadcast_to(
                    np.arange(candidate_rows.shape[0]),
                    (outer_rows.shape[0], candidate_rows.shape[0]),
                ).copy()
            row_dists = np.take_along_axis(dists, top, axis=1)
            order = np.argsort(row_dists, axis=1, kind="stable")
            sorted_idx = np.take_along_axis(top, order, axis=1)
            for i, outer_row in enumerate(outer_rows):
                pairs.append((int(outer_row), candidate_rows[sorted_idx[i]]))
        return ExecutionResult(self.name, scanned, join_pairs=pairs)


class PerPointSelectsOperator:
    """Execute the join as one incremental k-NN-Select per outer row."""

    name = "per-point-selects"

    def __init__(
        self, outer: SpatialTable, inner: SpatialTable, query: KnnJoinQuery
    ) -> None:
        self._outer = outer
        self._inner = inner
        self._query = query

    def execute(self) -> ExecutionResult:
        """Run one incremental k-NN-Select per outer row."""
        outer, inner, query = self._outer, self._inner, self._query
        scanned = 0
        pairs: list[tuple[int, np.ndarray]] = []
        for row_id in range(outer.n_rows):
            x, y = outer.points[row_id]
            select = KnnSelectQuery(
                table=inner.name,
                query=Point(float(x), float(y)),
                k=query.k,
                predicate=query.inner_predicate,
            )
            result = IncrementalKnnOperator(inner, select).execute()
            scanned += result.blocks_scanned
            pairs.append((row_id, result.row_ids))
        return ExecutionResult(self.name, scanned, join_pairs=pairs)
