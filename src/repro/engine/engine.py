"""The engine façade: register tables, explain and execute queries."""

from __future__ import annotations

from repro.engine.physical import ExecutionResult
from repro.engine.planner import PlanExplanation, plan_join, plan_range, plan_select
from repro.engine.queries import KnnJoinQuery, KnnSelectQuery, RangeQuery
from repro.engine.stats import StatisticsManager
from repro.engine.table import SpatialTable

Query = KnnSelectQuery | KnnJoinQuery | RangeQuery


class SpatialEngine:
    """A miniature spatial query engine with a cost-based optimizer.

    Usage::

        engine = SpatialEngine()
        engine.register(SpatialTable("restaurants", points, {"price": prices}))
        query = KnnSelectQuery("restaurants", Point(3, 4), k=10,
                               predicate=column("price") < 25)
        result, explanation = engine.execute(query)

    Args:
        stats: A preconfigured statistics manager (a default one is
            created when omitted).
    """

    def __init__(self, stats: StatisticsManager | None = None) -> None:
        self.stats = stats or StatisticsManager()

    def register(self, table: SpatialTable) -> None:
        """Register (or replace) a relation."""
        self.stats.register(table)

    def explain(self, query: Query) -> PlanExplanation:
        """Cost the query's QEP alternatives without executing."""
        __, explanation = self._plan(query)
        return explanation

    def execute(self, query: Query) -> tuple[ExecutionResult, PlanExplanation]:
        """Plan and run the query; returns results plus the explanation."""
        operator, explanation = self._plan(query)
        return operator.execute(), explanation

    def _plan(self, query: Query):
        if isinstance(query, KnnSelectQuery):
            return plan_select(self.stats, query)
        if isinstance(query, KnnJoinQuery):
            return plan_join(self.stats, query)
        if isinstance(query, RangeQuery):
            return plan_range(self.stats, query)
        raise TypeError(f"unsupported query type {type(query).__name__}")
