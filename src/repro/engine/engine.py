"""The engine façade: register tables, explain and execute queries.

Every query passes the :mod:`repro.resilience.guards` boundary checks
before planning: unanswerable inputs (non-finite focal points, bad
``k``) raise :class:`~repro.resilience.errors.InvalidQueryError`, while
suspicious-but-answerable ones become notes on the
:class:`~repro.engine.planner.PlanExplanation` — or errors too, when
the statistics manager is configured with ``strict=True``.
"""

from __future__ import annotations

from repro.engine.physical import (
    ExecutionResult,
    IncrementalKnnOperator,
    execute_incremental_knn_batch,
)
from repro.engine.planner import (
    PlanExplanation,
    plan_join,
    plan_range,
    plan_select,
    plan_select_batch,
)
from repro.engine.queries import KnnJoinQuery, KnnSelectQuery, RangeQuery
from repro.engine.stats import StatisticsManager
from repro.engine.table import SpatialTable
from repro.resilience.guards import (
    guard_join_query,
    guard_range_query,
    guard_select_query,
)

Query = KnnSelectQuery | KnnJoinQuery | RangeQuery


class SpatialEngine:
    """A miniature spatial query engine with a cost-based optimizer.

    Usage::

        engine = SpatialEngine()
        engine.register(SpatialTable("restaurants", points, {"price": prices}))
        query = KnnSelectQuery("restaurants", Point(3, 4), k=10,
                               predicate=column("price") < 25)
        result, explanation = engine.execute(query)

    Args:
        stats: A preconfigured statistics manager (a default one is
            created when omitted).
        selection_chain: Optional physical-operator selection chain
            (:mod:`repro.optimizer.selection`) the planner arbitrates
            through; applied to ``stats`` via
            :meth:`StatisticsManager.configure_selection`.  The default
            chain reproduces the legacy arbitration bit-for-bit.
        pinned_operators: Optional forced per-table/per-kind operator
            choices (``{"table:kind" | "kind": operator}``), prepended
            to the chain.
    """

    def __init__(
        self,
        stats: StatisticsManager | None = None,
        *,
        selection_chain=None,
        pinned_operators: dict | None = None,
    ) -> None:
        self.stats = stats or StatisticsManager()
        if selection_chain is not None or pinned_operators is not None:
            self.stats.configure_selection(selection_chain, pinned_operators)

    @property
    def selection_chain(self):
        """The resolved operator-selection chain planning goes through."""
        return self.stats.selection_chain

    def register(self, table: SpatialTable) -> None:
        """Register (or replace) a relation."""
        self.stats.register(table)

    def explain(self, query: Query) -> PlanExplanation:
        """Cost the query's QEP alternatives without executing."""
        __, explanation = self._plan(query)
        return explanation

    def execute(self, query: Query) -> tuple[ExecutionResult, PlanExplanation]:
        """Plan and run the query; returns results plus the explanation."""
        operator, explanation = self._plan(query)
        return operator.execute(), explanation

    # ------------------------------------------------------------------
    # Batched serving: plan and run many queries with amortized work
    # ------------------------------------------------------------------
    def explain_batch(self, queries: list[Query]) -> list[PlanExplanation]:
        """Cost a whole batch of queries without executing.

        Per-query output matches a loop of :meth:`explain` calls exactly,
        but k-NN selects are planned through
        :func:`~repro.engine.planner.plan_select_batch`: one estimator
        resolution, snapshot access, and batched ``estimate_batch`` call
        per table instead of per query.
        """
        return [explanation for __, explanation in self._plan_batch(queries)]

    def execute_batch(
        self, queries: list[Query]
    ) -> list[tuple[ExecutionResult, PlanExplanation]]:
        """Plan and run a whole batch; returns per-query (result, plan).

        Results are exactly equal — same ``row_ids`` in the same order,
        same ``blocks_scanned`` — to a loop of :meth:`execute` calls.
        Beyond the batched planning of :meth:`explain_batch`, groups of
        predicate-free, region-free incremental k-NN selects against the
        same table run through
        :func:`~repro.engine.physical.execute_incremental_knn_batch`,
        which shares one MINDIST tableau and one per-block row gather
        across the group instead of heap-browsing per query.

        Guard failures raise before anything executes (a scalar loop
        raises the same exception, after executing the earlier queries).
        """
        plans = self._plan_batch(queries)
        results: list[ExecutionResult | None] = [None] * len(plans)
        grouped: dict[str, list[int]] = {}
        for i, (operator, __) in enumerate(plans):
            query = queries[i]
            if (
                isinstance(operator, IncrementalKnnOperator)
                and isinstance(query, KnnSelectQuery)
                and query.predicate is None
                and query.region is None
            ):
                grouped.setdefault(query.table, []).append(i)
            else:
                results[i] = operator.execute()
        for name, indices in grouped.items():
            table = self.stats.table(name)
            # Execution reads the live index; re-gather on staleness even
            # under the "raise" policy (the scalar browser never raises).
            snapshot = self.stats.snapshot(name, on_stale="rebuild")
            outs = execute_incremental_knn_batch(
                table, [queries[i] for i in indices], snapshot
            )
            for i, out in zip(indices, outs):
                results[i] = out
        return [
            (result, explanation)
            for result, (__, explanation) in zip(results, plans)
        ]

    def _plan_batch(self, queries: list[Query]):
        """Guard and plan a batch; k-NN selects go through the batch planner."""
        notes = [self._guard(query) for query in queries]
        plans: list[tuple[object, PlanExplanation] | None] = [None] * len(queries)
        select_indices = [
            i for i, query in enumerate(queries) if isinstance(query, KnnSelectQuery)
        ]
        if select_indices:
            batched = plan_select_batch(
                self.stats, [queries[i] for i in select_indices]
            )
            for i, plan in zip(select_indices, batched):
                plans[i] = plan
        for i, query in enumerate(queries):
            if plans[i] is not None:
                continue
            if isinstance(query, KnnJoinQuery):
                plans[i] = plan_join(self.stats, query)
            elif isinstance(query, RangeQuery):
                plans[i] = plan_range(self.stats, query)
            else:
                raise TypeError(f"unsupported query type {type(query).__name__}")
        for i, (__, explanation) in enumerate(plans):
            explanation.notes.extend(notes[i])
        return plans

    def _plan(self, query: Query):
        notes = self._guard(query)
        if isinstance(query, KnnSelectQuery):
            operator, explanation = plan_select(self.stats, query)
        elif isinstance(query, KnnJoinQuery):
            operator, explanation = plan_join(self.stats, query)
        elif isinstance(query, RangeQuery):
            operator, explanation = plan_range(self.stats, query)
        else:
            raise TypeError(f"unsupported query type {type(query).__name__}")
        explanation.notes.extend(notes)
        return operator, explanation

    def _guard(self, query: Query) -> list[str]:
        """Boundary-validate a query; returns notes for the explanation.

        Unknown table names raise ``KeyError`` (the registration bug),
        unanswerable inputs raise
        :class:`~repro.resilience.errors.InvalidQueryError`, and
        suspicious ones raise only under ``strict``.
        """
        strict = self.stats.strict
        if isinstance(query, KnnSelectQuery):
            table = self.stats.table(query.table)
            bounds = table.index.bounds if table.n_rows else None
            return guard_select_query(query, table.n_rows, bounds, strict)
        if isinstance(query, KnnJoinQuery):
            outer = self.stats.table(query.outer)
            inner = self.stats.table(query.inner)
            return guard_join_query(query, outer.n_rows, inner.n_rows, strict)
        if isinstance(query, RangeQuery):
            table = self.stats.table(query.table)
            return guard_range_query(query, table.n_rows, strict)
        return []
