"""The engine façade: register tables, explain and execute queries.

Every query passes the :mod:`repro.resilience.guards` boundary checks
before planning: unanswerable inputs (non-finite focal points, bad
``k``) raise :class:`~repro.resilience.errors.InvalidQueryError`, while
suspicious-but-answerable ones become notes on the
:class:`~repro.engine.planner.PlanExplanation` — or errors too, when
the statistics manager is configured with ``strict=True``.
"""

from __future__ import annotations

from repro.engine.physical import ExecutionResult
from repro.engine.planner import PlanExplanation, plan_join, plan_range, plan_select
from repro.engine.queries import KnnJoinQuery, KnnSelectQuery, RangeQuery
from repro.engine.stats import StatisticsManager
from repro.engine.table import SpatialTable
from repro.resilience.guards import (
    guard_join_query,
    guard_range_query,
    guard_select_query,
)

Query = KnnSelectQuery | KnnJoinQuery | RangeQuery


class SpatialEngine:
    """A miniature spatial query engine with a cost-based optimizer.

    Usage::

        engine = SpatialEngine()
        engine.register(SpatialTable("restaurants", points, {"price": prices}))
        query = KnnSelectQuery("restaurants", Point(3, 4), k=10,
                               predicate=column("price") < 25)
        result, explanation = engine.execute(query)

    Args:
        stats: A preconfigured statistics manager (a default one is
            created when omitted).
    """

    def __init__(self, stats: StatisticsManager | None = None) -> None:
        self.stats = stats or StatisticsManager()

    def register(self, table: SpatialTable) -> None:
        """Register (or replace) a relation."""
        self.stats.register(table)

    def explain(self, query: Query) -> PlanExplanation:
        """Cost the query's QEP alternatives without executing."""
        __, explanation = self._plan(query)
        return explanation

    def execute(self, query: Query) -> tuple[ExecutionResult, PlanExplanation]:
        """Plan and run the query; returns results plus the explanation."""
        operator, explanation = self._plan(query)
        return operator.execute(), explanation

    def _plan(self, query: Query):
        notes = self._guard(query)
        if isinstance(query, KnnSelectQuery):
            operator, explanation = plan_select(self.stats, query)
        elif isinstance(query, KnnJoinQuery):
            operator, explanation = plan_join(self.stats, query)
        elif isinstance(query, RangeQuery):
            operator, explanation = plan_range(self.stats, query)
        else:
            raise TypeError(f"unsupported query type {type(query).__name__}")
        explanation.notes.extend(notes)
        return operator, explanation

    def _guard(self, query: Query) -> list[str]:
        """Boundary-validate a query; returns notes for the explanation.

        Unknown table names raise ``KeyError`` (the registration bug),
        unanswerable inputs raise
        :class:`~repro.resilience.errors.InvalidQueryError`, and
        suspicious ones raise only under ``strict``.
        """
        strict = self.stats.strict
        if isinstance(query, KnnSelectQuery):
            table = self.stats.table(query.table)
            bounds = table.index.bounds if table.n_rows else None
            return guard_select_query(query, table.n_rows, bounds, strict)
        if isinstance(query, KnnJoinQuery):
            outer = self.stats.table(query.outer)
            inner = self.stats.table(query.inner)
            return guard_join_query(query, outer.n_rows, inner.n_rows, strict)
        if isinstance(query, RangeQuery):
            table = self.stats.table(query.table)
            return guard_range_query(query, table.n_rows, strict)
        return []
