"""Generation-keyed LRU cache for select-cost estimates.

Under heavy serving traffic the same neighborhoods are estimated over
and over: workloads are spatially skewed, and the Staircase answer for
two nearby focal points with the same ``k`` is the same catalog
interpolation give or take the Eq. 1 distance term.  The cache exploits
that by quantizing the focal point onto a ``cells x cells`` grid over
the table's bounds and memoizing one estimate per
``(table, data_generation, cell_x, cell_y, k)`` key.

Two properties make it safe to sit under the planner:

* **Invalidation is structural.**  The table's ``data_generation`` is
  part of the key, so the instant a
  :class:`~repro.index.mutable_quadtree.MutableQuadtree` mutates, every
  cached entry stops matching — no flush coordination with the
  staleness machinery is needed (stale entries age out of the LRU).
  Re-registering a table purges its entries eagerly.  When the index
  keeps a generation-keyed update log, the statistics manager narrows
  this with :meth:`EstimateCache.revalidate`: entries in cells no dirty
  region touched are re-keyed to the new generation instead of being
  orphaned, so a localized insert no longer evicts estimates for
  untouched regions.
* **It is opt-in and approximate.**  Queries that share a cell share an
  estimate, so a cache hit can return the estimate computed for a
  *nearby* focal point.  The engine keeps the cache off by default
  (``StatisticsManager(estimate_cache_size=0)``); turning it on trades
  per-query exactness of the *estimate* (never of query results) for
  serving throughput.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

#: (table, data_generation, cell_x, cell_y, k)
CacheKey = tuple[str, int, int, int, int]

#: Default quantization resolution per axis.
DEFAULT_CACHE_CELLS = 256


class EstimateCache:
    """A bounded LRU of select-cost estimates with hit/miss counters.

    Args:
        max_entries: Capacity; the least recently used entry is evicted
            beyond it.
        cells: Quantization resolution per axis (the key grid is
            ``cells x cells`` over each table's bounds).

    Raises:
        ValueError: On a non-positive capacity or resolution.
    """

    def __init__(self, max_entries: int, cells: int = DEFAULT_CACHE_CELLS) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if cells < 1:
            raise ValueError(f"cells must be >= 1, got {cells}")
        self.max_entries = int(max_entries)
        self.cells = int(cells)
        self._entries: OrderedDict[CacheKey, float] = OrderedDict()
        #: Lookups answered from the cache.
        self.hits = 0
        #: Lookups that fell through to the estimator.
        self.misses = 0

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def _axis_cell(self, value: float, lo: float, hi: float) -> int:
        span = hi - lo
        if span <= 0.0:
            return 0
        cell = int((value - lo) / span * self.cells)
        return min(max(cell, 0), self.cells - 1)

    def key(
        self, table: str, data_generation: int, x: float, y: float, k: int, bounds
    ) -> CacheKey:
        """Build the cache key for one query.

        Args:
            table: Registered table name.
            data_generation: The table index's mutation counter — baking
                it into the key is what makes a generation bump
                invalidate every prior entry.
            x: Focal x coordinate (quantized; out-of-bounds clamps to
                the edge cells).
            y: Focal y coordinate.
            k: Number of neighbors.
            bounds: The table's indexed bounds (``Rect``-like).
        """
        return (
            table,
            int(data_generation),
            self._axis_cell(x, bounds.x_min, bounds.x_max),
            self._axis_cell(y, bounds.y_min, bounds.y_max),
            int(k),
        )

    def keys_for(
        self, table: str, data_generation: int, pts: np.ndarray, ks: np.ndarray, bounds
    ) -> list[CacheKey]:
        """Vectorized :meth:`key` over an ``(m, 2)`` query batch."""
        m = pts.shape[0]
        if m == 0:
            return []
        span_x = bounds.x_max - bounds.x_min
        span_y = bounds.y_max - bounds.y_min
        if span_x > 0.0:
            cx = np.clip(
                ((pts[:, 0] - bounds.x_min) / span_x * self.cells).astype(np.int64),
                0,
                self.cells - 1,
            )
        else:
            cx = np.zeros(m, dtype=np.int64)
        if span_y > 0.0:
            cy = np.clip(
                ((pts[:, 1] - bounds.y_min) / span_y * self.cells).astype(np.int64),
                0,
                self.cells - 1,
            )
        else:
            cy = np.zeros(m, dtype=np.int64)
        generation = int(data_generation)
        return [
            (table, generation, int(cx[i]), int(cy[i]), int(ks[i]))
            for i in range(m)
        ]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> float | None:
        """Return the cached estimate, or ``None`` on a miss.

        Hits refresh the entry's LRU position; both outcomes bump the
        counters.
        """
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: CacheKey, value: float) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail."""
        self._entries[key] = float(value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate(self, table: str | None = None) -> int:
        """Drop entries (all, or one table's); returns the count dropped.

        Counters are preserved — invalidation is routine maintenance,
        not a statistics reset.
        """
        if table is None:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped
        stale = [key for key in self._entries if key[0] == table]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def revalidate(
        self,
        table: str,
        old_generation: int,
        new_generation: int,
        dirty_rects,
        bounds,
    ) -> tuple[int, int]:
        """Carry untouched-cell entries across a generation bump.

        Structural invalidation (the generation inside the key) makes a
        single localized insert orphan *every* cached estimate for the
        table.  When the index can report which regions actually changed
        (a generation-keyed update log), the manager calls this instead:
        entries of ``(table, old_generation)`` whose quantized cell
        intersects no dirty region are re-keyed to ``new_generation`` in
        place — preserving their LRU position — and only entries in
        touched cells are dropped.

        Carrying is within the cache's approximate contract (queries
        sharing a cell already share an estimate): a carried value is
        the estimate computed before the mutation, which for cells away
        from every dirty region is the same catalog interpolation the
        rebuilt estimator would produce, up to the maintenance coverage
        radius the cell grid does not model.  Exactness-critical callers
        keep the cache disabled, as before.

        Args:
            table: Registered table name.
            old_generation: Generation the candidate entries are keyed
                by (entries at other generations are left untouched).
            new_generation: The index's current generation.
            dirty_rects: Iterable of ``(x_min, y_min, x_max, y_max)``
                mutated regions (coalesced dirty log).
            bounds: The table's indexed bounds (``Rect``-like) — must be
                the same bounds the keys were quantized against.

        Returns:
            ``(carried, dropped)`` entry counts.
        """
        old_generation = int(old_generation)
        new_generation = int(new_generation)
        if new_generation == old_generation:
            return (0, 0)
        ranges = []
        for rect in dirty_rects:
            x_min, y_min, x_max, y_max = (float(v) for v in rect)
            ranges.append(
                (
                    self._axis_cell(x_min, bounds.x_min, bounds.x_max),
                    self._axis_cell(x_max, bounds.x_min, bounds.x_max),
                    self._axis_cell(y_min, bounds.y_min, bounds.y_max),
                    self._axis_cell(y_max, bounds.y_min, bounds.y_max),
                )
            )
        carried = 0
        dropped = 0
        rebuilt: OrderedDict[CacheKey, float] = OrderedDict()
        for key, value in self._entries.items():
            if key[0] != table or key[1] != old_generation:
                rebuilt[key] = value
                continue
            cx, cy = key[2], key[3]
            if any(
                cx0 <= cx <= cx1 and cy0 <= cy <= cy1
                for cx0, cx1, cy0, cy1 in ranges
            ):
                dropped += 1
                continue
            new_key = (table, new_generation, cx, cy, key[4])
            if new_key in rebuilt:
                dropped += 1  # a fresher entry already owns the new key
                continue
            rebuilt[new_key] = value
            carried += 1
        self._entries = rebuilt
        return (carried, dropped)

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (e.g. between benchmark phases)."""
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        return (
            f"{len(self._entries)}/{self.max_entries} entries, "
            f"{self.hits} hits / {self.misses} misses "
            f"(hit rate {self.hit_rate:.1%})"
        )
