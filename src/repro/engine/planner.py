"""The cost-based planner: QEP enumeration and arbitration.

For each query shape the planner enumerates the applicable physical
operators, costs each with the statistics manager's estimators, and
returns the cheapest together with a :class:`PlanExplanation` that
records every alternative — the reproduction's equivalent of
``EXPLAIN``.

Cost model (block scans, per the paper):

* ``filter-then-knn`` — the relation's block count (full scan).
* ``incremental-knn`` — the Staircase estimate at the *effective*
  ``k' = ceil(k / σ)`` where σ combines the relational predicate's
  sampled selectivity and the spatial region's estimated selectivity
  (independence assumed, the textbook simplification).
* ``locality-join`` — the pair's join-catalog estimate at ``k'``.
* ``per-point-selects`` — outer row count times the mean Staircase
  estimate over a spatial sample of outer rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.catalog import CatalogLookupError
from repro.engine.physical import (
    FilterThenKnnOperator,
    IncrementalKnnOperator,
    IndexRangeScanOperator,
    LocalityJoinOperator,
    PerPointSelectsOperator,
    RegionPrunedKnnOperator,
)
from repro.engine.queries import KnnJoinQuery, KnnSelectQuery, RangeQuery
from repro.engine.stats import StatisticsManager
from repro.geometry import Point
from repro.geometry.backends import active_backend
from repro.optimizer.selection import (
    LinkDecision,
    PlanAssignment,
    PlanningContext,
)

#: Number of outer rows sampled when costing per-point-selects.
SELECT_COST_SAMPLE = 32


@dataclass
class PlanExplanation:
    """Why the planner chose what it chose.

    Attributes:
        chosen: Name of the selected operator.
        alternatives: ``{operator name: estimated block cost}``.
        effective_k: The ``k'`` the costs were computed at.
        selectivity: The combined selectivity that produced ``k'``.
        estimator_tier: Which fallback tier produced the cost estimate
            ("" when costing needed no estimator, e.g. range scans).
        degraded: Whether a non-primary tier (or the guaranteed bound)
            had to answer.
        notes: Planning diagnostics — input-guard observations and
            fallback degradation provenance.
        preprocessing: Flattened preprocessing instrumentation of the
            costing estimator (:meth:`repro.perf.PreprocessingStats.as_dict`
            — worker count, anchor dedup counters, per-phase seconds);
            empty when the estimator exposes none.
        cache_hit: Whether the select-cost estimate came from the
            statistics manager's estimate cache — ``None`` when the
            cache is disabled (the default) or the plan needed no
            select estimate.
        kernel_backend: Name of the geometry kernel backend active when
            the plan was costed (``"numpy"`` or ``"numba"``; "" when
            the plan needed no kernel work).
        decided_by: Name of the selection-chain link whose decision
            stood ("" for plans that predate the chain, e.g. degraded
            shard placeholders).
        trail: The chain walk's per-link
            :class:`~repro.optimizer.selection.LinkDecision` records, in
            chain order — why the plan won, not just its cost.
    """

    chosen: str
    alternatives: dict[str, float] = field(default_factory=dict)
    effective_k: int = 0
    selectivity: float = 1.0
    estimator_tier: str = ""
    degraded: bool = False
    notes: list[str] = field(default_factory=list)
    preprocessing: dict[str, float] = field(default_factory=dict)
    cache_hit: bool | None = None
    kernel_backend: str = ""
    decided_by: str = ""
    trail: list[LinkDecision] = field(default_factory=list)

    def cost_of(self, operator: str) -> float:
        """Estimated cost of one alternative.

        Raises:
            KeyError: If the operator was not considered.
        """
        return self.alternatives[operator]

    def __str__(self) -> str:
        lines = [f"chosen: {self.chosen} (k'={self.effective_k}, σ={self.selectivity:.3g})"]
        for name, cost in sorted(self.alternatives.items(), key=lambda kv: kv[1]):
            marker = "->" if name == self.chosen else "  "
            lines.append(f"  {marker} {name}: {cost:.1f} blocks")
        if self.decided_by:
            lines.append(f"  decided by: {self.decided_by}")
        for decision in self.trail:
            lines.append(f"  link {decision.describe()}")
        if self.estimator_tier:
            status = "degraded" if self.degraded else "primary"
            lines.append(f"  estimator: {self.estimator_tier} ({status})")
        if self.cache_hit is not None:
            lines.append(f"  estimate cache: {'hit' if self.cache_hit else 'miss'}")
        if self.kernel_backend:
            lines.append(f"  kernel backend: {self.kernel_backend}")
        if self.preprocessing:
            wall = self.preprocessing.get("wall_seconds", 0.0)
            deduped = int(self.preprocessing.get("anchors_deduped", 0))
            workers = int(self.preprocessing.get("workers", 0))
            lines.append(
                f"  preprocessing: {wall:.3f}s"
                f" (workers={workers}, anchors deduped={deduped})"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _record_provenance(explanation: PlanExplanation, estimator) -> None:
    """Copy a fallback chain's last outcome onto the explanation.

    Raw estimators (``fallback=False``) have no ``last_outcome`` and
    leave the explanation untouched.
    """
    outcome = getattr(estimator, "last_outcome", None)
    if outcome is None:
        return
    explanation.estimator_tier = outcome.tier
    explanation.degraded = explanation.degraded or outcome.degraded
    if outcome.degraded:
        explanation.notes.append(outcome.describe())


def _record_preprocessing(explanation: PlanExplanation, estimator) -> None:
    """Copy the estimator's preprocessing instrumentation, if any.

    Works for raw estimators and fallback chains alike (the chain
    merges across its built tiers); estimators without stats leave the
    explanation's ``preprocessing`` dict empty.
    """
    stats = getattr(estimator, "preprocessing_stats", None)
    if stats is None:
        return
    explanation.preprocessing.update(stats.as_dict())


def _estimator_tiers(estimator, default: str) -> tuple[str, ...]:
    """The estimator's tier vocabulary for the planning context.

    Fallback chains expose ``tier_names`` (primary first); a raw
    estimator (``fallback=False``) is its primary technique alone.
    """
    tiers = getattr(estimator, "tier_names", None)
    if tiers:
        return tuple(tiers)
    return (default,)


def _run_chain(
    stats: StatisticsManager,
    query,
    explanation: PlanExplanation,
    context: PlanningContext,
) -> PlanAssignment:
    """Walk the selection chain and copy its verdict onto the explanation.

    Every plan decision — including single-candidate range scans and
    empty-table trivia — goes through here, so ``decided_by`` and the
    per-link ``trail`` are uniformly present on every explanation.

    Raises:
        ValueError: If the chain finished without assigning an operator
            (a custom chain missing an arbiter link).
    """
    assignment = PlanAssignment(estimator_ranking=context.estimator_tiers)
    assignment = stats.selection_chain.select_physical_operators(
        query, assignment, context
    )
    if assignment.operator is None:
        raise ValueError(
            f"selection chain {stats.selection_chain.describe()!r} finished "
            f"without choosing an operator for kind {context.kind!r}; "
            "chains must include an arbiter link such as CostBasedSelection"
        )
    explanation.chosen = assignment.operator
    explanation.decided_by = assignment.decided_by
    explanation.trail = assignment.trail
    return assignment


def plan_select(
    stats: StatisticsManager, query: KnnSelectQuery
) -> tuple[FilterThenKnnOperator | IncrementalKnnOperator, PlanExplanation]:
    """Choose between the two k-NN-Select QEPs of Section 1."""
    table = stats.table(query.table)
    if table.n_rows == 0:
        # Nothing to scan: either plan is a no-op; pick the trivial scan.
        explanation = _plan_trivial_select(stats, table, query)
        return FilterThenKnnOperator(table, query), explanation
    sigma = stats.predicate_selectivity(query.table, query.predicate)
    sigma *= stats.region_selectivity(query.table, query.region)
    sigma = min(max(sigma, 1.0 / max(table.n_rows, 1)), 1.0)
    effective_k = int(math.ceil(query.k / sigma))

    cost_filter = float(table.index.num_blocks)
    estimator = stats.select_estimator_for_planning(query.table)
    cost_incremental, cache_hit = stats.estimate_select_cost(
        query.table, estimator, query.query, effective_k
    )
    # Browsing can never scan more than every block once.
    cost_incremental = min(cost_incremental, cost_filter)

    outcome = None if cache_hit else getattr(estimator, "last_outcome", None)
    explanation = _assemble_select_explanation(
        stats,
        table,
        query,
        sigma,
        effective_k,
        cost_filter,
        cost_incremental,
        cache_hit=cache_hit,
        outcome=outcome,
        estimator_tiers=_estimator_tiers(estimator, "staircase"),
    )
    if not cache_hit:
        _record_preprocessing(explanation, estimator)
    return _select_operator_for(explanation.chosen, table, query), explanation


def _plan_trivial_select(
    stats: StatisticsManager, table, query: KnnSelectQuery
) -> PlanExplanation:
    """The empty-table select plan: a zero-cost trivial scan.

    Still routed through the selection chain (single candidate) so the
    decision trail is uniformly present.
    """
    alternatives = {FilterThenKnnOperator.name: 0.0}
    explanation = PlanExplanation(
        chosen="",
        alternatives=alternatives,
        effective_k=query.k,
        selectivity=1.0,
    )
    __, data_generation = stats.catalog_freshness(query.table)
    context = PlanningContext(
        kind="select",
        table=query.table,
        candidates=alternatives,
        tie_order=(FilterThenKnnOperator.name,),
        data_generation=data_generation,
        staleness_policy=stats.staleness_policy,
        cache_stats=stats.cache_stats(),
        effective_k=query.k,
        selectivity=1.0,
    )
    _run_chain(stats, query, explanation, context)
    return explanation


def _assemble_select_explanation(
    stats: StatisticsManager,
    table,
    query: KnnSelectQuery,
    sigma: float,
    effective_k: int,
    cost_filter: float,
    cost_incremental: float,
    *,
    cache_hit: bool | None,
    outcome,
    estimator_tiers: tuple[str, ...],
) -> PlanExplanation:
    """Build the alternatives table and arbitrate the select plan.

    The shared tail of :func:`plan_select` and
    :func:`plan_select_batch`: everything after the estimate is in
    hand.  Candidate costs are precomputed here (batched upstream);
    the selection chain arbitrates over the numbers and its verdict,
    trail, and provenance land on the explanation.
    """
    alternatives: dict[str, float] = {
        FilterThenKnnOperator.name: cost_filter,
        IncrementalKnnOperator.name: cost_incremental,
    }
    if query.region is not None and table.n_rows:
        # Region pruning bounds browsing by the blocks inside the region.
        region_blocks = float(table.count_index.overlapping(query.region).shape[0])
        alternatives[RegionPrunedKnnOperator.name] = min(
            cost_incremental, region_blocks
        )
    explanation = PlanExplanation(
        chosen="",
        alternatives=alternatives,
        effective_k=effective_k,
        selectivity=sigma,
        kernel_backend=active_backend(),
    )
    # Ties resolve toward the earlier entry; the full scan's sequential
    # pattern beats random-access browsing at equal block counts, and
    # the pruned browser dominates the plain one whenever applicable.
    order = [FilterThenKnnOperator.name]
    if RegionPrunedKnnOperator.name in alternatives:
        order.append(RegionPrunedKnnOperator.name)  # dominates plain browsing
    order.append(IncrementalKnnOperator.name)
    if cache_hit:
        estimate_tier, estimate_degraded = "estimate-cache", False
    elif outcome is not None:
        estimate_tier, estimate_degraded = outcome.tier, outcome.degraded
    else:
        estimate_tier, estimate_degraded = "", False
    catalog_generation, data_generation = stats.catalog_freshness(query.table)
    context = PlanningContext(
        kind="select",
        table=query.table,
        candidates=alternatives,
        tie_order=tuple(order),
        estimator_tiers=estimator_tiers,
        estimate_operators=(
            IncrementalKnnOperator.name,
            RegionPrunedKnnOperator.name,
        ),
        estimate_tier=estimate_tier,
        estimate_degraded=estimate_degraded,
        data_generation=data_generation,
        catalog_generation=catalog_generation,
        staleness_policy=stats.staleness_policy,
        cache_stats=stats.cache_stats(),
        cache_hit=cache_hit,
        effective_k=effective_k,
        selectivity=sigma,
    )
    _run_chain(stats, query, explanation, context)
    explanation.cache_hit = cache_hit
    if cache_hit:
        # The estimator never ran; label the answer's real source.
        explanation.estimator_tier = "estimate-cache"
    elif outcome is not None:
        explanation.estimator_tier = outcome.tier
        explanation.degraded = outcome.degraded
        if outcome.degraded:
            explanation.notes.append(outcome.describe())
    return explanation


def _select_operator_for(chosen: str, table, query: KnnSelectQuery):
    """Instantiate the physical operator the arbitration picked."""
    if chosen == RegionPrunedKnnOperator.name:
        return RegionPrunedKnnOperator(table, query)
    if chosen == IncrementalKnnOperator.name:
        return IncrementalKnnOperator(table, query)
    return FilterThenKnnOperator(table, query)


def plan_select_batch(
    stats: StatisticsManager, queries: list[KnnSelectQuery]
) -> list[tuple[object, PlanExplanation]]:
    """Plan a whole batch of k-NN selects with amortized statistics work.

    Per-query output is exactly what :func:`plan_select` produces — the
    same operator choice, alternatives, selectivities and provenance —
    but the expensive per-call steps are paid once per *table*: one
    estimator resolution, one snapshot access, and one batched
    ``estimate_batch`` call covering every query against that table
    (routed through the estimate cache when enabled).

    Args:
        stats: The statistics manager.
        queries: The batch, in serving order (any mix of tables).

    Returns:
        ``(operator, explanation)`` pairs aligned with ``queries``.
    """
    plans: list[tuple[object, PlanExplanation] | None] = [None] * len(queries)
    by_table: dict[str, list[int]] = {}
    for i, query in enumerate(queries):
        by_table.setdefault(query.table, []).append(i)
    for name, indices in by_table.items():
        table = stats.table(name)
        if table.n_rows == 0:
            for i in indices:
                query = queries[i]
                explanation = _plan_trivial_select(stats, table, query)
                plans[i] = (FilterThenKnnOperator(table, query), explanation)
            continue
        sigmas = np.empty(len(indices), dtype=float)
        effective_ks = np.empty(len(indices), dtype=np.int64)
        for j, i in enumerate(indices):
            query = queries[i]
            sigma = stats.predicate_selectivity(name, query.predicate)
            sigma *= stats.region_selectivity(name, query.region)
            sigma = min(max(sigma, 1.0 / max(table.n_rows, 1)), 1.0)
            sigmas[j] = sigma
            effective_ks[j] = int(math.ceil(query.k / sigma))
        pts = np.array(
            [[queries[i].query.x, queries[i].query.y] for i in indices], dtype=float
        )
        cost_filter = float(table.index.num_blocks)
        estimator = stats.select_estimator_for_planning(name)
        costs, hits, outcomes = stats.estimate_select_costs_batch(
            name, estimator, pts, effective_ks
        )
        preprocessing: dict[str, float] = {}
        prep_stats = getattr(estimator, "preprocessing_stats", None)
        if prep_stats is not None:
            preprocessing = prep_stats.as_dict()
        tiers = _estimator_tiers(estimator, "staircase")
        for j, i in enumerate(indices):
            query = queries[i]
            cost_incremental = min(float(costs[j]), cost_filter)
            hit = bool(hits[j]) if hits is not None else None
            # Shared provenance: per-query tier labels backed by the
            # one batch-call attempt record.
            outcome = None if hit else outcomes[j]
            explanation = _assemble_select_explanation(
                stats,
                table,
                query,
                float(sigmas[j]),
                int(effective_ks[j]),
                cost_filter,
                cost_incremental,
                cache_hit=hit,
                outcome=outcome,
                estimator_tiers=tiers,
            )
            if not hit:
                explanation.preprocessing.update(preprocessing)
            plans[i] = (
                _select_operator_for(explanation.chosen, table, query),
                explanation,
            )
    return plans  # type: ignore[return-value]


def plan_range(
    stats: StatisticsManager, query: RangeQuery
) -> tuple[IndexRangeScanOperator, PlanExplanation]:
    """Plan a range select (one QEP — its cost is fixed by the region).

    Included so ``EXPLAIN`` covers the range operator the paper
    contrasts against: the cost — the number of blocks overlapping the
    region — is known exactly from the Count-Index, no catalogs needed.
    """
    table = stats.table(query.table)
    if table.n_rows:
        overlapping = table.count_index.overlapping(query.region)
        cost = float(overlapping.shape[0])
    else:
        cost = 0.0
    sigma = stats.predicate_selectivity(query.table, query.predicate)
    sigma *= stats.region_selectivity(query.table, query.region)
    alternatives = {IndexRangeScanOperator.name: cost}
    explanation = PlanExplanation(
        chosen="",
        alternatives=alternatives,
        effective_k=0,
        selectivity=sigma,
    )
    __, data_generation = stats.catalog_freshness(query.table)
    context = PlanningContext(
        kind="range",
        table=query.table,
        candidates=alternatives,
        tie_order=(IndexRangeScanOperator.name,),
        data_generation=data_generation,
        staleness_policy=stats.staleness_policy,
        cache_stats=stats.cache_stats(),
        selectivity=sigma,
    )
    _run_chain(stats, query, explanation, context)
    return IndexRangeScanOperator(table, query), explanation


def plan_join(
    stats: StatisticsManager, query: KnnJoinQuery
) -> tuple[LocalityJoinOperator | PerPointSelectsOperator, PlanExplanation]:
    """Choose between the block-by-block join and per-point selects."""
    outer = stats.table(query.outer)
    inner = stats.table(query.inner)
    if outer.n_rows == 0 or inner.n_rows == 0:
        # Degenerate join: zero work either way.
        alternatives = {PerPointSelectsOperator.name: 0.0}
        explanation = PlanExplanation(
            chosen="",
            alternatives=alternatives,
            effective_k=query.k,
            selectivity=1.0,
        )
        __, data_generation = stats.catalog_freshness(query.inner)
        context = PlanningContext(
            kind="join",
            table=query.outer,
            inner=query.inner,
            candidates=alternatives,
            tie_order=(PerPointSelectsOperator.name,),
            data_generation=data_generation,
            staleness_policy=stats.staleness_policy,
            cache_stats=stats.cache_stats(),
            effective_k=query.k,
            selectivity=1.0,
        )
        _run_chain(stats, query, explanation, context)
        return PerPointSelectsOperator(outer, inner, query), explanation
    sigma = stats.predicate_selectivity(query.inner, query.inner_predicate)
    sigma = min(max(sigma, 1.0 / max(inner.n_rows, 1)), 1.0)
    effective_k = int(math.ceil(query.k / sigma))

    join_estimator = stats.join_estimator_for_planning(query.outer, query.inner)
    try:
        cost_join = join_estimator.estimate(min(effective_k, stats.max_k))
        if effective_k > stats.max_k:
            # Beyond the catalogs, scale by the worst case: every outer
            # block scans the whole inner relation.
            cost_join = min(
                cost_join * (effective_k / stats.max_k),
                float(outer.index.num_blocks * inner.index.num_blocks),
            )
    except CatalogLookupError:
        # Raw-estimator path only; the fallback chain absorbs lookup
        # failures internally and degrades instead.
        cost_join = float(outer.index.num_blocks * inner.index.num_blocks)

    join_outcome = getattr(join_estimator, "last_outcome", None)

    select_estimator = stats.select_estimator_for_planning(query.inner)
    rng = np.random.default_rng(0)
    sample = rng.integers(0, max(outer.n_rows, 1), size=min(SELECT_COST_SAMPLE, max(outer.n_rows, 1)))
    per_select = [
        select_estimator.estimate(
            Point(float(outer.points[i, 0]), float(outer.points[i, 1])), effective_k
        )
        for i in sample
    ]
    cost_selects = float(np.mean(per_select)) * outer.n_rows if per_select else 0.0
    select_outcome = getattr(select_estimator, "last_outcome", None)

    alternatives = {
        LocalityJoinOperator.name: cost_join,
        PerPointSelectsOperator.name: cost_selects,
    }
    explanation = PlanExplanation(
        chosen="",
        alternatives=alternatives,
        effective_k=effective_k,
        selectivity=sigma,
    )
    # Provenance for the chain's confidence link: the arbitration rests
    # on a degraded estimate if either side's chain degraded.
    degraded_outcome = next(
        (o for o in (join_outcome, select_outcome) if o is not None and o.degraded),
        None,
    )
    if degraded_outcome is not None:
        estimate_tier, estimate_degraded = degraded_outcome.tier, True
    elif join_outcome is not None:
        estimate_tier, estimate_degraded = join_outcome.tier, False
    else:
        estimate_tier, estimate_degraded = "", False
    # Freshness facts come from the inner relation: its select catalogs
    # back the per-point-selects costing, and join catalogs are rebuilt
    # alongside the same snapshot generation.
    catalog_generation, data_generation = stats.catalog_freshness(query.inner)
    context = PlanningContext(
        kind="join",
        table=query.outer,
        inner=query.inner,
        candidates=alternatives,
        tie_order=(LocalityJoinOperator.name, PerPointSelectsOperator.name),
        estimator_tiers=_estimator_tiers(join_estimator, stats.join_technique),
        estimate_operators=(
            LocalityJoinOperator.name,
            PerPointSelectsOperator.name,
        ),
        estimate_tier=estimate_tier,
        estimate_degraded=estimate_degraded,
        data_generation=data_generation,
        catalog_generation=catalog_generation,
        staleness_policy=stats.staleness_policy,
        cache_stats=stats.cache_stats(),
        effective_k=effective_k,
        selectivity=sigma,
    )
    _run_chain(stats, query, explanation, context)
    if explanation.chosen == LocalityJoinOperator.name:
        _record_provenance(explanation, join_estimator)
        _record_preprocessing(explanation, join_estimator)
        return LocalityJoinOperator(outer, inner, query, selectivity=sigma), explanation
    _record_provenance(explanation, select_estimator)
    _record_preprocessing(explanation, select_estimator)
    return PerPointSelectsOperator(outer, inner, query), explanation
