"""Declarative query specifications.

Two query shapes, matching the paper's Section 1 exactly:

* :class:`KnnSelectQuery` — "the k closest rows to a focal point",
  optionally restricted by a relational predicate and/or a spatial
  range ("the k-closest restaurants within my budget / within the
  downtown district").
* :class:`KnnJoinQuery` — "for each outer row, its k closest inner
  rows", optionally restricted by a predicate on the inner relation.

Specifications are plain data: the planner decides how to execute them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expressions import Predicate
from repro.geometry import Point, Rect  # noqa: F401 (Rect used by RangeQuery)


@dataclass(frozen=True)
class KnnSelectQuery:
    """A k-NN-Select with optional relational and spatial filters.

    Attributes:
        table: Name of the queried relation.
        query: The focal point.
        k: Number of qualifying neighbors requested.
        predicate: Optional relational predicate the results must pass.
        region: Optional spatial range the results must fall in.
    """

    table: str
    query: Point
    k: int
    predicate: Predicate | None = None
    region: Rect | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")


@dataclass(frozen=True)
class RangeQuery:
    """A spatial range select with an optional relational predicate.

    "Select the hotels within a certain downtown district" — the range
    counterpart the paper contrasts k-NN against (its cost is easy: the
    region is fixed).  Included so the engine covers the full predicate
    algebra of the Section 1 examples.

    Attributes:
        table: Name of the queried relation.
        region: The selection rectangle.
        predicate: Optional relational predicate.
    """

    table: str
    region: Rect
    predicate: Predicate | None = None


@dataclass(frozen=True)
class KnnJoinQuery:
    """A k-NN-Join with an optional predicate on the inner relation.

    Attributes:
        outer: Name of the outer relation.
        inner: Name of the inner relation.
        k: Neighbors per outer row.
        inner_predicate: Optional predicate qualifying inner rows.
    """

    outer: str
    inner: str
    k: int
    inner_predicate: Predicate | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.outer == self.inner:
            # Self-joins are legal; nothing to validate beyond k.
            pass
