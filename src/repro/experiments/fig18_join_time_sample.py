"""Figure 18: k-NN-Join estimation time versus sample size.

Paper shape: Block-Sample estimation time grows with the sample size
(it computes the locality of every sampled block per estimate);
Catalog-Merge stays constant (the sample size only affects its
preprocessing, not the single lookup).
"""

from __future__ import annotations

from repro.experiments import join_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config
from repro.workloads.metrics import time_callable

TIMING_SCALE_RANK = -1

#: Sample sizes of the paper's Figure 18 x-axis.
PAPER_SAMPLE_SIZES = (100, 300, 500, 700, 900)


def sample_series(config: ExperimentConfig) -> tuple[int, ...]:
    """Figure 18's sample sizes, capped to the profile's workload."""
    cap = max(config.sample_sizes)
    series = tuple(s for s in PAPER_SAMPLE_SIZES if s <= cap * 2)
    return series or config.sample_sizes


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 18 series."""
    config = config or get_config()
    scale = config.scales[TIMING_SCALE_RANK]
    k = min(64, config.max_k)

    result = ExperimentResult(
        name="fig18",
        title="k-NN-Join estimation time vs sample size (seconds)",
        columns=("sample_size", "block_sample_s", "catalog_merge_s"),
    )
    for sample_size in sample_series(config):
        block_sample = join_support.block_sample_estimator(config, scale, sample_size)
        catalog_merge = join_support.catalog_merge_estimator(config, scale, sample_size)
        t_bs = time_callable(lambda: block_sample.estimate(k), repeats=5).mean_seconds
        t_cm = time_callable(lambda: catalog_merge.estimate(k), repeats=200).mean_seconds
        result.add_row(sample_size, t_bs, t_cm)
    result.notes.append(
        "paper shape: Block-Sample grows with sample size; Catalog-Merge constant"
    )
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
