"""Figure 21: schema-level k-NN-Join preprocessing time versus scale.

Paper shape: Block-Sample precomputes nothing (0 s); Catalog-Merge
preprocessing grows with the scale factor (it samples and merges
per-pair localities over ever more blocks); Virtual-Grid is roughly
constant — its work depends on the number of grid cells, not the data
size.
"""

from __future__ import annotations

from repro.experiments import join_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 21 series."""
    config = config or get_config()
    result = ExperimentResult(
        name="fig21",
        title=(
            f"k-NN-Join preprocessing time for a {config.n_relations}-relation "
            "schema (seconds)"
        ),
        columns=("scale", "virtual_grid_s", "block_sample_s", "catalog_merge_s"),
    )
    for scale in config.scales:
        __, cm_seconds, __, vg_seconds, __, __ = join_support.schema_catalog_totals(
            config, scale
        )
        result.add_row(scale, vg_seconds, 0.0, cm_seconds)
    result.notes.append(
        "paper shape: Block-Sample 0; Catalog-Merge grows; Virtual-Grid ~constant"
    )
    top_scale = config.scales[-1]
    pair = join_support.catalog_merge_estimator(
        config, top_scale, config.schema_sample_size
    )
    result.notes.append(
        f"canonical pair at scale {top_scale}: {pair.preprocessing_stats.describe()}"
    )
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
