"""Figure 19: Virtual-Grid k-NN-Join estimation time versus grid size.

Paper shape: almost constant — the estimation time depends on the
number of outer blocks (each is selected by some cell's range query
regardless of the grid resolution), not on the number of cells.
"""

from __future__ import annotations

from repro.experiments import join_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config
from repro.workloads.metrics import time_callable

TIMING_SCALE_RANK = -1


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 19 series."""
    config = config or get_config()
    scale = config.scales[TIMING_SCALE_RANK]
    outer = join_support.relation_counts(config, scale, 0)
    k = min(64, config.max_k)

    result = ExperimentResult(
        name="fig19",
        title="Virtual-Grid k-NN-Join estimation time vs grid size (seconds)",
        columns=("grid_size", "virtual_grid_s"),
    )
    for grid_size in config.grid_sizes:
        grid = join_support.virtual_grid_estimator(config, scale, grid_size)
        t = time_callable(lambda: grid.estimate(outer, k), repeats=20).mean_seconds
        result.add_row(f"{grid_size}x{grid_size}", t)
    result.notes.append("paper shape: almost constant across grid sizes")
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
