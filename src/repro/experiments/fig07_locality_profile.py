"""Figure 7: stability of the locality size across values of k.

The paper picks a random block of the outer relation and shows that the
size of its locality in the inner relation is constant over large
intervals of k (Figure 7a) and tabulates the intervals (Figure 7b).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import join_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config
from repro.knn.locality import locality_size_profile

#: Scale factor used for the illustration.
PROFILE_SCALE = 2


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 7(b) locality staircase table."""
    config = config or get_config()
    scale = min(PROFILE_SCALE, max(config.scales))
    outer = join_support.relation_index(config, scale, 0)
    inner = join_support.relation_counts(config, scale, 1)
    rng = np.random.default_rng(config.seed)
    block = outer.blocks[int(rng.integers(0, outer.num_blocks))]

    profile = locality_size_profile(inner, block.rect, config.max_k)
    result = ExperimentResult(
        name="fig07",
        title="Locality-size staircase for one random outer block",
        columns=("k_start", "k_end", "locality_size"),
    )
    for k_start, k_end, size in profile:
        if k_start > config.max_k:
            break
        result.add_row(k_start, min(k_end, config.max_k), size)
    rect = block.rect
    result.notes.append(
        f"outer block id={block.block_id}, rect=({rect.x_min:.1f}, "
        f"{rect.y_min:.1f}, {rect.x_max:.1f}, {rect.y_max:.1f})"
    )
    result.notes.append(
        "paper shape: locality size constant over large k intervals "
        "(e.g. [1,313]->25)"
    )
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
