"""Figure 17: k-NN-Join estimation time versus k.

Per-estimate wall-clock time of the three join techniques at
geometrically spaced k, with the sample size fixed (paper: 1000) and
the grid fixed (paper: 10x10).  Paper shape: Catalog-Merge is more than
four orders of magnitude faster than Block-Sample and Virtual-Grid and
flat in k (one catalog lookup); Block-Sample recomputes sample
localities per estimate; Virtual-Grid aggregates over grid cells.
"""

from __future__ import annotations

from repro.experiments import join_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config
from repro.experiments.fig12_select_time import k_series
from repro.workloads.metrics import time_callable

TIMING_SCALE_RANK = -1


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 17 series."""
    config = config or get_config()
    scale = config.scales[TIMING_SCALE_RANK]
    block_sample = join_support.block_sample_estimator(
        config, scale, config.join_sample_size
    )
    catalog_merge = join_support.catalog_merge_estimator(
        config, scale, config.join_sample_size
    )
    grid = join_support.virtual_grid_estimator(config, scale, config.join_grid_size)
    bound_grid = grid.for_outer(join_support.relation_counts(config, scale, 0))

    result = ExperimentResult(
        name="fig17",
        title="k-NN-Join estimation time (seconds per estimate)",
        columns=("k", "virtual_grid_s", "block_sample_s", "catalog_merge_s"),
    )
    for k in k_series(config.max_k):
        t_vg = time_callable(lambda: bound_grid.estimate(k), repeats=20).mean_seconds
        t_bs = time_callable(lambda: block_sample.estimate(k), repeats=5).mean_seconds
        t_cm = time_callable(lambda: catalog_merge.estimate(k), repeats=200).mean_seconds
        result.add_row(k, t_vg, t_bs, t_cm)
    result.notes.append(
        "paper shape: Catalog-Merge >4 orders of magnitude faster; flat in k"
    )
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
