"""Shared experiment infrastructure: configs, testbed caching, tables.

The paper's testbed: OpenStreetMap data inserted at scale factors 1..10
(10M..100M points), region quadtree with leaf capacity 10,000, catalogs
limited to k = 10,000, 100,000 random queries.  The reproduction scales
every knob down together (DESIGN.md §2) so that the *block counts* —
the unit all costs are measured in — stay comparable; three profiles
trade fidelity for runtime.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.datasets import scale_factor_points
from repro.index.count_index import CountIndex
from repro.index.quadtree import Quadtree


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments.

    Attributes:
        base_n: Points per unit of scale factor (paper: 10M).
        capacity: Quadtree leaf capacity (paper: 10,000).
        max_k: Catalog limit (paper: 10,000).
        n_queries: Select queries per accuracy experiment (paper: 100k).
        scales: Scale factors exercised by vs-scale experiments.
        sample_sizes: Outer-block sample sizes for Figures 15, 18, 22, 23.
        grid_sizes: Virtual-grid sizes (cells per axis) for Figures 16,
            19, 22, 23.
        n_relations: Relation count of the schema-level storage
            experiments, Figures 20–21 (paper: 10 indexes).
        join_sample_size: Fixed sample size where the paper fixes 1000.
        join_grid_size: Fixed grid size where the paper fixes 10x10.
        schema_sample_size: Catalog-Merge sample size in the schema-level
            storage/preprocessing experiments (Figures 20-21), where
            2 * C(n_relations, 2) catalogs are built per scale; the
            ``full`` profile restores the paper's 1000.
        join_k_values: Random k values averaged over by join-accuracy
            experiments (quartile midpoints of the uniform [1, max_k]
            distribution the paper draws its random k from).
        seed: Workload seed.
        dataset_kind: Synthetic generator family ("osm", "uniform",
            "skewed").
    """

    base_n: int = 20_000
    capacity: int = 128
    max_k: int = 512
    n_queries: int = 400
    scales: tuple[int, ...] = tuple(range(1, 11))
    sample_sizes: tuple[int, ...] = (50, 100, 150, 200, 250, 300, 350, 400, 450, 500)
    grid_sizes: tuple[int, ...] = (4, 8, 12, 16, 20)
    n_relations: int = 10
    join_sample_size: int = 1_000
    join_grid_size: int = 10
    schema_sample_size: int = 300
    join_k_values: tuple[int, ...] = (64, 192, 320, 448)
    seed: int = 7
    dataset_kind: str = "osm"

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


PROFILES: dict[str, ExperimentConfig] = {
    "quick": ExperimentConfig(
        base_n=2_000,
        capacity=64,
        max_k=128,
        n_queries=60,
        scales=(1, 2, 3),
        sample_sizes=(10, 25, 50),
        grid_sizes=(2, 4, 8),
        n_relations=3,
        join_sample_size=50,
        join_grid_size=4,
        schema_sample_size=25,
        join_k_values=(16, 48, 80, 112),
    ),
    "default": ExperimentConfig(),
    "full": ExperimentConfig(
        base_n=50_000,
        max_k=2_048,
        n_queries=2_000,
        schema_sample_size=1_000,
        join_k_values=(256, 768, 1_280, 1_792),
    ),
}


def get_config(profile: str = "default", **overrides) -> ExperimentConfig:
    """Look up a profile, optionally overriding individual fields.

    Raises:
        KeyError: If the profile name is unknown.
    """
    if profile not in PROFILES:
        raise KeyError(f"unknown profile {profile!r}; expected one of {sorted(PROFILES)}")
    config = PROFILES[profile]
    return config.with_overrides(**overrides) if overrides else config


# ----------------------------------------------------------------------
# Testbed caching: datasets and indexes are deterministic functions of
# their parameters, so experiments sharing a scale reuse one build.
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=32)
def dataset(
    scale: int,
    base_n: int,
    seed: int,
    kind: str = "osm",
    structure_seed: int | None = None,
) -> np.ndarray:
    """Materialize (and cache) the scaled dataset."""
    return scale_factor_points(
        scale, base_n=base_n, seed=seed, kind=kind, structure_seed=structure_seed
    )


@functools.lru_cache(maxsize=32)
def build_index(
    scale: int,
    base_n: int,
    capacity: int,
    seed: int,
    kind: str = "osm",
    structure_seed: int | None = None,
) -> Quadtree:
    """Build (and cache) the quadtree of one scale factor.

    Distinct relations of a schema are modelled by distinct point seeds
    over a shared ``structure_seed`` (co-distributed entity types, like
    the paper's pair of OpenStreetMap indexes).
    """
    return Quadtree(
        dataset(scale, base_n, seed, kind, structure_seed), capacity=capacity
    )


@functools.lru_cache(maxsize=32)
def build_count_index(
    scale: int,
    base_n: int,
    capacity: int,
    seed: int,
    kind: str = "osm",
    structure_seed: int | None = None,
) -> CountIndex:
    """Build (and cache) the Count-Index of one scale factor."""
    return CountIndex.from_index(
        build_index(scale, base_n, capacity, seed, kind, structure_seed)
    )


def clear_caches() -> None:
    """Drop all cached testbeds (used by tests to bound memory)."""
    dataset.cache_clear()
    build_index.cache_clear()
    build_count_index.cache_clear()


# ----------------------------------------------------------------------
# Result tables
# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    """A printable table of an experiment's series.

    Attributes:
        name: Experiment identifier (e.g. ``"fig11"``).
        title: Human-readable title matching the paper's caption.
        columns: Column headers.
        rows: Row tuples aligned with ``columns``.
        notes: Free-form annotations (paper-expected shape, caveats).
    """

    name: str
    title: str
    columns: Sequence[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def format_table(self) -> str:
        """Render an aligned, plain-text table."""
        headers = [str(c) for c in self.columns]
        body = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            f"{self.name}: {self.title}",
            "  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
            "  " + "  ".join("-" * w for w in widths),
        ]
        for r in body:
            lines.append("  " + "  ".join(v.rjust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format_table()


def _format_cell(value) -> str:
    """Format a table cell: compact floats, plain ints/strings."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
