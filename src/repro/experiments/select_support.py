"""Shared machinery for the k-NN-Select experiments (Figures 4, 11–14).

Estimator construction dominates these experiments' runtime, so built
estimators are cached per (config, scale): Figure 11 (accuracy), 12
(time), 13 (preprocessing) and 14 (storage) all reuse the same builds.
"""

from __future__ import annotations

import functools

from repro.estimators.density import DensityBasedEstimator
from repro.estimators.staircase import StaircaseEstimator
from repro.experiments.common import ExperimentConfig, build_count_index, build_index
from repro.knn.distance_browsing import select_cost_exact
from repro.workloads.queries import SelectQuery, data_distributed_queries

#: Seed offset distinguishing relation identities in multi-relation
#: experiments; relation r of the schema uses ``config.seed + r``.
RELATION_SEED_STRIDE = 1


@functools.lru_cache(maxsize=16)
def staircase_estimator(
    config: ExperimentConfig,
    scale: int,
    variant: str = "center+corners",
    dedup: bool = True,
) -> StaircaseEstimator:
    """Build (and cache) a Staircase estimator for one scale factor.

    ``dedup=False`` forces the serial reference build path — Figure 13
    uses it to report the shared-anchor speedup (the catalogs are
    bit-for-bit equal either way).
    """
    index = build_index(scale, config.base_n, config.capacity, config.seed, config.dataset_kind)
    return StaircaseEstimator(index, max_k=config.max_k, variant=variant, dedup=dedup)


@functools.lru_cache(maxsize=16)
def density_estimator(config: ExperimentConfig, scale: int) -> DensityBasedEstimator:
    """Build (and cache) the density-based estimator for one scale."""
    return DensityBasedEstimator(
        build_count_index(scale, config.base_n, config.capacity, config.seed, config.dataset_kind)
    )


@functools.lru_cache(maxsize=16)
def select_workload(config: ExperimentConfig, scale: int) -> tuple[SelectQuery, ...]:
    """The random select-query workload of one scale factor.

    Focal points follow the data distribution (location-based services
    issue queries from where the users — the data — are); k is uniform
    in ``[1, max_k]``.
    """
    points = build_index(
        scale, config.base_n, config.capacity, config.seed, config.dataset_kind
    ).all_points()
    return tuple(
        data_distributed_queries(points, config.n_queries, config.max_k, seed=config.seed)
    )


@functools.lru_cache(maxsize=16)
def actual_select_costs(config: ExperimentConfig, scale: int) -> tuple[int, ...]:
    """Ground-truth distance-browsing costs of the scale's workload."""
    index = build_index(scale, config.base_n, config.capacity, config.seed, config.dataset_kind)
    counts = build_count_index(
        scale, config.base_n, config.capacity, config.seed, config.dataset_kind
    )
    return tuple(
        select_cost_exact(counts, index.blocks, q.query, q.k)
        for q in select_workload(config, scale)
    )


def clear_caches() -> None:
    """Drop cached estimators and workloads (bounds test memory)."""
    staircase_estimator.cache_clear()
    density_estimator.cache_clear()
    select_workload.cache_clear()
    actual_select_costs.cache_clear()
