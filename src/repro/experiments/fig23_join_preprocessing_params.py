"""Figure 23: k-NN-Join preprocessing time vs sample size and grid size.

Two sub-series at a fixed scale factor:

* (a) Catalog-Merge preprocessing grows with the sample size (one
  temporary locality catalog per sampled block, then a larger merge).
* (b) Virtual-Grid preprocessing grows with the grid size (one locality
  catalog per cell).
"""

from __future__ import annotations

from repro.experiments import join_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config

PARAMS_SCALE_RANK = -1


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 23(a) and 23(b) series in one table."""
    config = config or get_config()
    scale = config.scales[PARAMS_SCALE_RANK]

    result = ExperimentResult(
        name="fig23",
        title="k-NN-Join preprocessing time vs sample size (a) / grid size (b)",
        columns=("series", "parameter", "preprocessing_s"),
    )
    estimator = grid = None
    for sample_size in config.sample_sizes:
        estimator = join_support.catalog_merge_estimator(config, scale, sample_size)
        result.add_row(
            "a:catalog_merge", str(sample_size), estimator.preprocessing_seconds
        )
    for grid_size in config.grid_sizes:
        grid = join_support.virtual_grid_estimator(config, scale, grid_size)
        result.add_row(
            "b:virtual_grid", f"{grid_size}x{grid_size}", grid.preprocessing_seconds
        )
    result.notes.append("paper shape: both grow with their parameter")
    if estimator is not None:
        result.notes.append(
            f"largest sample: {estimator.preprocessing_stats.describe()}"
        )
    if grid is not None:
        result.notes.append(f"largest grid: {grid.preprocessing_stats.describe()}")
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
