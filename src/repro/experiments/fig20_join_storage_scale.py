"""Figure 20: schema-level k-NN-Join catalog storage versus scale factor.

For a schema of ``n_relations`` indexes (paper: 10), Catalog-Merge
maintains a catalog per ordered pair (90 catalogs) while Virtual-Grid
maintains one catalog set per relation (10).  Paper shape: Virtual-Grid
needs about an order of magnitude less storage.
"""

from __future__ import annotations

from repro.experiments import join_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 20 series."""
    config = config or get_config()
    result = ExperimentResult(
        name="fig20",
        title=(
            f"k-NN-Join catalog storage for a {config.n_relations}-relation "
            "schema (bytes)"
        ),
        columns=("scale", "catalog_merge_bytes", "virtual_grid_bytes", "ratio"),
    )
    for scale in config.scales:
        cm_bytes, __, vg_bytes, __, __, __ = join_support.schema_catalog_totals(
            config, scale
        )
        ratio = cm_bytes / vg_bytes if vg_bytes else float("inf")
        result.add_row(scale, cm_bytes, vg_bytes, ratio)
    n = config.n_relations
    result.notes.append(
        f"{n * (n - 1)} pair catalogs (Catalog-Merge) vs {n} grid catalog "
        "sets (Virtual-Grid)"
    )
    result.notes.append("paper shape: Virtual-Grid ~an order of magnitude smaller")
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
