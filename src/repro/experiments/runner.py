"""Command-line runner for the experiment suite.

Usage::

    python -m repro.experiments fig11 --profile default
    python -m repro.experiments all --profile quick
    repro-experiments fig17 --profile full

Each experiment prints the table that corresponds to one figure of the
paper's evaluation section.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Callable

from repro.experiments.common import PROFILES, get_config, ExperimentResult

#: Experiment id -> implementing module (one per paper table/figure).
EXPERIMENTS: dict[str, str] = {
    "fig04": "repro.experiments.fig04_staircase_profile",
    "fig07": "repro.experiments.fig07_locality_profile",
    "fig11": "repro.experiments.fig11_select_accuracy",
    "fig12": "repro.experiments.fig12_select_time",
    "fig13": "repro.experiments.fig13_select_preprocessing",
    "fig14": "repro.experiments.fig14_select_storage",
    "fig15": "repro.experiments.fig15_join_accuracy_sample",
    "fig16": "repro.experiments.fig16_join_accuracy_grid",
    "fig17": "repro.experiments.fig17_join_time_k",
    "fig18": "repro.experiments.fig18_join_time_sample",
    "fig19": "repro.experiments.fig19_join_time_grid",
    "fig20": "repro.experiments.fig20_join_storage_scale",
    "fig21": "repro.experiments.fig21_join_preprocessing_scale",
    "fig22": "repro.experiments.fig22_join_storage_params",
    "fig23": "repro.experiments.fig23_join_preprocessing_params",
    "fig24": "repro.experiments.fig24_summary",
}


def experiment_runner(name: str) -> Callable[..., ExperimentResult]:
    """Resolve an experiment id to its ``run`` callable.

    Raises:
        KeyError: For an unknown experiment id.
    """
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; expected one of {sorted(EXPERIMENTS)}")
    module = importlib.import_module(EXPERIMENTS[name])
    return module.run


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id (paper figure number) or 'all'",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="default",
        help="testbed scale profile (default: default)",
    )
    parser.add_argument(
        "--dataset",
        choices=["osm", "uniform", "skewed"],
        default=None,
        help="override the synthetic dataset family",
    )
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    overrides = {"dataset_kind": args.dataset} if args.dataset else {}
    config = get_config(args.profile, **overrides)
    for name in names:
        start = time.perf_counter()
        result = experiment_runner(name)(config)
        elapsed = time.perf_counter() - start
        print(result.format_table())
        print(f"  [{name} completed in {elapsed:.1f}s, profile={args.profile}]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
