"""Figure 15: k-NN-Join estimation accuracy versus sample size.

Error ratio of the Block-Sample and Catalog-Merge techniques for the
canonical join pair, at increasing outer-block sample sizes, averaged
over random k values (the paper repeats the random-k measurement per
sample size).  Paper shape: both drop below ~5 % once the sample
reaches ~400 blocks.
"""

from __future__ import annotations

from repro.experiments import join_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config
from repro.workloads.metrics import mean_error_ratio

#: Scale factor of the join accuracy experiments (paper: full data).
ACCURACY_SCALE_RANK = -1


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 15 series."""
    config = config or get_config()
    scale = config.scales[ACCURACY_SCALE_RANK]
    ks = [min(k, config.max_k) for k in config.join_k_values]
    actuals = [join_support.actual_join_cost(config, scale, k) for k in ks]

    result = ExperimentResult(
        name="fig15",
        title="k-NN-Join estimation accuracy vs sample size (mean error ratio)",
        columns=("sample_size", "block_sample", "catalog_merge"),
    )
    for sample_size in config.sample_sizes:
        block_sample = join_support.block_sample_estimator(config, scale, sample_size)
        catalog_merge = join_support.catalog_merge_estimator(config, scale, sample_size)
        est_bs = [block_sample.estimate(k) for k in ks]
        est_cm = [catalog_merge.estimate(k) for k in ks]
        result.add_row(
            sample_size,
            mean_error_ratio(est_bs, actuals),
            mean_error_ratio(est_cm, actuals),
        )
    result.notes.append("paper shape: error < ~5% for sample sizes >= 400")
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
