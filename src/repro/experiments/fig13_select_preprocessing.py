"""Figure 13: preprocessing time of the k-NN-Select estimators vs scale.

Paper shape: Staircase preprocessing grows with the scale factor (more
blocks, more catalogs); Center+Corners costs more than Center-Only
(five profiles per block instead of one); the density-based technique
precomputes nothing.
"""

from __future__ import annotations

from repro.experiments import select_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 13 series."""
    config = config or get_config()
    result = ExperimentResult(
        name="fig13",
        title="k-NN-Select estimator preprocessing time (seconds)",
        columns=(
            "scale",
            "staircase_center_corners_s",
            "staircase_serial_reference_s",
            "shared_anchor_speedup",
            "staircase_center_only_s",
            "density_based_s",
        ),
    )
    for scale in config.scales:
        cc = select_support.staircase_estimator(config, scale)
        reference = select_support.staircase_estimator(config, scale, dedup=False)
        center_only = select_support.staircase_estimator(config, scale, variant="center")
        speedup = reference.preprocessing_seconds / max(cc.preprocessing_seconds, 1e-12)
        result.add_row(
            scale,
            cc.preprocessing_seconds,
            reference.preprocessing_seconds,
            speedup,
            center_only.preprocessing_seconds,
            0.0,  # the density-based technique precomputes no catalogs
        )
        result.notes.append(f"scale {scale}: {cc.preprocessing_stats.describe()}")
    result.notes.append(
        "paper shape: grows with scale; Center+Corners > Center-Only; density = 0"
    )
    result.notes.append(
        "serial_reference is the per-leaf build (dedup off); catalogs are "
        "bit-for-bit equal to the shared-anchor build"
    )
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
