"""Enable ``python -m repro.experiments <figXX>``."""

import sys

from repro.experiments.runner import main

sys.exit(main())
