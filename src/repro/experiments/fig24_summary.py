"""Figure 24: summary of the pros and cons of each estimation technique.

The paper's Figure 24 is a qualitative Low/Medium/High matrix over four
dimensions (estimation time, estimation accuracy, storage overhead,
preprocessing time).  This experiment *derives* the matrix from
measurements: each technique is scored on a small reference workload
and bucketed Low/Medium/High relative to its group (select vs join
techniques), alongside the raw measured values.
"""

from __future__ import annotations

from repro.experiments import join_support, select_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config
from repro.workloads.metrics import mean_error_ratio, time_callable

SUMMARY_SCALE_RANK = -1


def _bucket(value: float, values: list[float], reverse: bool = False) -> str:
    """Bucket ``value`` Low/Medium/High relative to its group.

    Zero maps to "None" (the paper uses it for absent overheads).
    Thresholds are geometric: a value within 3x of the group minimum is
    Low, within 3x of the maximum is High, otherwise Medium.
    """
    if value == 0:
        return "None"
    positive = [v for v in values if v > 0]
    lo, hi = min(positive), max(positive)
    if hi / lo < 3:  # group indistinguishable
        return "Medium"
    label = "Low" if value <= lo * 3 else ("High" if value >= hi / 3 else "Medium")
    if reverse:  # higher is better (accuracy)
        label = {"Low": "High", "High": "Low", "Medium": "Medium"}[label]
    return label


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Derive the Figure 24 matrix from measurements."""
    config = config or get_config()
    scale = config.scales[SUMMARY_SCALE_RANK]
    k_mid = min(64, config.max_k)

    # ------------------------------------------------------------------
    # Select techniques
    # ------------------------------------------------------------------
    staircase = select_support.staircase_estimator(config, scale)
    density = select_support.density_estimator(config, scale)
    workload = select_support.select_workload(config, scale)
    actuals = select_support.actual_select_costs(config, scale)
    probe = workload[0].query

    select_rows = {
        "Density-Based": {
            "time": time_callable(lambda: density.estimate(probe, k_mid), repeats=50).mean_seconds,
            "error": mean_error_ratio(
                [density.estimate(q.query, q.k) for q in workload], actuals
            ),
            "storage": float(density.storage_bytes()),
            "preprocessing": 0.0,
        },
        "Staircase (Center-Only)": {
            "time": time_callable(
                lambda: staircase.estimate(probe, k_mid, variant="center"), repeats=50
            ).mean_seconds,
            "error": mean_error_ratio(
                [staircase.estimate(q.query, q.k, variant="center") for q in workload],
                actuals,
            ),
            "storage": float(
                select_support.staircase_estimator(config, scale, variant="center").storage_bytes()
            ),
            "preprocessing": select_support.staircase_estimator(
                config, scale, variant="center"
            ).preprocessing_seconds,
        },
        "Staircase (Center+Corners)": {
            "time": time_callable(lambda: staircase.estimate(probe, k_mid), repeats=50).mean_seconds,
            "error": mean_error_ratio(
                [staircase.estimate(q.query, q.k) for q in workload], actuals
            ),
            "storage": float(staircase.storage_bytes()),
            "preprocessing": staircase.preprocessing_seconds,
        },
    }

    # ------------------------------------------------------------------
    # Join techniques
    # ------------------------------------------------------------------
    ks = [min(k, config.max_k) for k in config.join_k_values]
    join_actuals = [join_support.actual_join_cost(config, scale, k) for k in ks]
    block_sample = join_support.block_sample_estimator(config, scale, config.join_sample_size)
    catalog_merge = join_support.catalog_merge_estimator(config, scale, config.join_sample_size)
    grid = join_support.virtual_grid_estimator(config, scale, config.join_grid_size)
    bound_grid = grid.for_outer(join_support.relation_counts(config, scale, 0))

    join_rows = {
        "Block-Sample": {
            "time": time_callable(lambda: block_sample.estimate(k_mid), repeats=3).mean_seconds,
            "error": mean_error_ratio([block_sample.estimate(k) for k in ks], join_actuals),
            "storage": float(block_sample.storage_bytes()),
            "preprocessing": 0.0,
        },
        "Catalog-Merge": {
            "time": time_callable(lambda: catalog_merge.estimate(k_mid), repeats=100).mean_seconds,
            "error": mean_error_ratio([catalog_merge.estimate(k) for k in ks], join_actuals),
            "storage": float(catalog_merge.storage_bytes()),
            "preprocessing": catalog_merge.preprocessing_seconds,
        },
        "Virtual-Grid": {
            "time": time_callable(lambda: bound_grid.estimate(k_mid), repeats=10).mean_seconds,
            "error": mean_error_ratio([bound_grid.estimate(k) for k in ks], join_actuals),
            "storage": float(grid.storage_bytes()),
            "preprocessing": grid.preprocessing_seconds,
        },
    }

    result = ExperimentResult(
        name="fig24",
        title="Measured pros/cons summary of each estimation technique",
        columns=(
            "operator",
            "technique",
            "est_time",
            "est_time_s",
            "accuracy",
            "error_ratio",
            "storage",
            "storage_bytes",
            "preprocessing",
            "preprocessing_s",
        ),
    )
    for operator, rows in (("k-NN-Select", select_rows), ("k-NN-Join", join_rows)):
        times = [r["time"] for r in rows.values()]
        errors = [r["error"] for r in rows.values()]
        storages = [r["storage"] for r in rows.values()]
        preps = [r["preprocessing"] for r in rows.values()]
        for technique, r in rows.items():
            result.add_row(
                operator,
                technique,
                _bucket(r["time"], times),
                r["time"],
                _bucket(r["error"], errors, reverse=True),
                r["error"],
                _bucket(r["storage"], storages),
                r["storage"],
                _bucket(r["preprocessing"], preps),
                r["preprocessing"],
            )
    result.notes.append(
        "buckets derived from measurements; compare with the paper's Figure 24"
    )
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
