"""Figure 22: k-NN-Join catalog storage vs sample size and grid size.

Two sub-series at a fixed scale factor (the paper fixes scale 10):

* (a) Catalog-Merge storage grows with the sample size — more temporary
  catalogs produce more entries in the merged catalog.
* (b) Virtual-Grid storage grows with the grid size — one catalog per
  cell.
"""

from __future__ import annotations

from repro.experiments import join_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config

PARAMS_SCALE_RANK = -1


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 22(a) and 22(b) series in one table."""
    config = config or get_config()
    scale = config.scales[PARAMS_SCALE_RANK]

    result = ExperimentResult(
        name="fig22",
        title="k-NN-Join catalog storage vs sample size (a) / grid size (b)",
        columns=("series", "parameter", "storage_bytes"),
    )
    for sample_size in config.sample_sizes:
        estimator = join_support.catalog_merge_estimator(config, scale, sample_size)
        result.add_row("a:catalog_merge", str(sample_size), estimator.storage_bytes())
    for grid_size in config.grid_sizes:
        grid = join_support.virtual_grid_estimator(config, scale, grid_size)
        result.add_row("b:virtual_grid", f"{grid_size}x{grid_size}", grid.storage_bytes())
    result.notes.append(
        "paper shape: both grow with their parameter (more catalog entries/cells)"
    )
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
