"""Figure 11: k-NN-Select estimation accuracy versus scale factor.

For every scale factor, the mean error ratio of the two Staircase
variants and the density-based baseline over a random query workload.
Paper shape: both Staircase variants beat the density-based technique;
Center+Corners stays below ~20 % error.
"""

from __future__ import annotations

from repro.experiments import select_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config
from repro.workloads.metrics import mean_error_ratio


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 11 series."""
    config = config or get_config()
    result = ExperimentResult(
        name="fig11",
        title="k-NN-Select estimation accuracy (mean error ratio)",
        columns=(
            "scale",
            "staircase_center_corners",
            "staircase_center_only",
            "density_based",
        ),
    )
    for scale in config.scales:
        staircase = select_support.staircase_estimator(config, scale)
        density = select_support.density_estimator(config, scale)
        workload = select_support.select_workload(config, scale)
        actuals = select_support.actual_select_costs(config, scale)

        est_cc = [staircase.estimate(q.query, q.k) for q in workload]
        est_c = [staircase.estimate(q.query, q.k, variant="center") for q in workload]
        est_d = [density.estimate(q.query, q.k) for q in workload]
        result.add_row(
            scale,
            mean_error_ratio(est_cc, actuals),
            mean_error_ratio(est_c, actuals),
            mean_error_ratio(est_d, actuals),
        )
    result.notes.append(
        "paper shape: Staircase < Density-Based by >10%; Center+Corners <~20%"
    )
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
