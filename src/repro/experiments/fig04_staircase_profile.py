"""Figure 4: stability of the k-NN-Select cost across values of k.

The paper picks a random query point on the OpenStreetMap quadtree and
shows that the number of blocks scanned is constant over large
intervals of k (the staircase shape, Figure 4a) and tabulates the
intervals (Figure 4b).  This experiment regenerates the table for a
random query point of the reproduction testbed.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    build_count_index,
    build_index,
    get_config,
)
from repro.geometry import Point
from repro.knn.distance_browsing import select_cost_profile

#: Scale factor used for the illustration (any scale shows the shape).
PROFILE_SCALE = 2


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 4(b) staircase table."""
    config = config or get_config()
    scale = min(PROFILE_SCALE, max(config.scales))
    index = build_index(scale, config.base_n, config.capacity, config.seed, config.dataset_kind)
    counts = build_count_index(
        scale, config.base_n, config.capacity, config.seed, config.dataset_kind
    )
    rng = np.random.default_rng(config.seed)
    pick = int(rng.integers(0, index.num_points))
    points = index.all_points()
    query = Point(float(points[pick, 0]), float(points[pick, 1]))

    profile = select_cost_profile(counts, index.blocks, query, config.max_k)
    result = ExperimentResult(
        name="fig04",
        title="k-NN-Select cost staircase for one random query point",
        columns=("k_start", "k_end", "cost_blocks"),
    )
    for k_start, k_end, cost in profile:
        result.add_row(k_start, min(k_end, config.max_k), cost)
    intervals = len(profile)
    mean_width = (
        sum(min(k_end, config.max_k) - k_start + 1 for k_start, k_end, __ in profile)
        / intervals
        if intervals
        else 0.0
    )
    result.notes.append(
        f"query=({query.x:.1f}, {query.y:.1f}); {intervals} intervals over "
        f"k in [1, {config.max_k}], mean interval width {mean_width:.0f}"
    )
    result.notes.append(
        "paper shape: cost constant over large k intervals (e.g. [1,520]->3)"
    )
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
