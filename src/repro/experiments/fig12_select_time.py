"""Figure 12: k-NN-Select estimation time versus k.

Per-query estimation time (seconds, log scale in the paper) for the two
Staircase variants and the density-based baseline, at geometrically
spaced k.  Paper shape: Staircase ~two orders of magnitude faster and
flat in k; density-based grows with k (its MINDIST scan extends until
the expected search region contains k points).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import select_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config
from repro.geometry import Point
from repro.workloads.metrics import time_callable

#: Scale factor at which timings are taken (paper uses the full data).
TIMING_SCALE_RANK = -1  # last configured scale

#: Number of random focal points averaged per k.
N_FOCAL_POINTS = 20


def k_series(max_k: int) -> list[int]:
    """Geometric k values 1, 4, 16, ... capped at ``max_k`` (paper: ..4096)."""
    ks: list[int] = []
    k = 1
    while k <= max_k:
        ks.append(k)
        k *= 4
    if ks[-1] != max_k:
        ks.append(max_k)
    return ks


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 12 series."""
    config = config or get_config()
    scale = config.scales[TIMING_SCALE_RANK]
    staircase = select_support.staircase_estimator(config, scale)
    density = select_support.density_estimator(config, scale)
    points = select_support.build_index(
        scale, config.base_n, config.capacity, config.seed, config.dataset_kind
    ).all_points()
    rng = np.random.default_rng(config.seed)
    picks = rng.integers(0, points.shape[0], size=N_FOCAL_POINTS)
    focal = [Point(float(points[i, 0]), float(points[i, 1])) for i in picks]

    result = ExperimentResult(
        name="fig12",
        title="k-NN-Select estimation time (seconds per query)",
        columns=(
            "k",
            "staircase_center_corners_s",
            "staircase_center_only_s",
            "density_based_s",
        ),
    )
    for k in k_series(config.max_k):
        t_cc = _mean_time(lambda q: staircase.estimate(q, k), focal)
        t_c = _mean_time(lambda q: staircase.estimate(q, k, variant="center"), focal)
        t_d = _mean_time(lambda q: density.estimate(q, k), focal)
        result.add_row(k, t_cc, t_c, t_d)
    result.notes.append(
        "paper shape: Staircase flat in k and ~100x faster; density grows with k"
    )
    return result


def _mean_time(fn, focal_points: list[Point], repeats: int = 30) -> float:
    """Average per-call time of ``fn`` across the focal points."""
    times = [
        time_callable(lambda q=q: fn(q), repeats=repeats, warmup=2).mean_seconds
        for q in focal_points
    ]
    return float(np.mean(times))


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
