"""Figure 14: storage overhead of the k-NN-Select estimators vs scale.

Paper shape: Staircase storage grows with scale (one or two catalogs
per block) but stays small in absolute terms (< 4 MB at 0.1 B points);
Center-Only needs roughly half of Center+Corners; the density-based
technique stores only the per-block statistics of the Count-Index.
"""

from __future__ import annotations

from repro.experiments import select_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 14 series."""
    config = config or get_config()
    result = ExperimentResult(
        name="fig14",
        title="k-NN-Select estimator storage overhead (bytes)",
        columns=(
            "scale",
            "staircase_center_corners_bytes",
            "staircase_center_only_bytes",
            "density_based_bytes",
        ),
    )
    for scale in config.scales:
        cc = select_support.staircase_estimator(config, scale)
        center_only = select_support.staircase_estimator(config, scale, variant="center")
        density = select_support.density_estimator(config, scale)
        result.add_row(
            scale,
            cc.storage_bytes(),
            center_only.storage_bytes(),
            density.storage_bytes(),
        )
    result.notes.append(
        "paper shape: grows with scale; Center+Corners ~2x Center-Only; "
        "density minimal (Count-Index statistics only)"
    )
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
