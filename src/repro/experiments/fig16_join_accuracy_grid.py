"""Figure 16: Virtual-Grid k-NN-Join estimation accuracy versus grid size.

Error ratio of the Virtual-Grid technique for the canonical join pair
at increasing virtual-grid resolutions, averaged over random k values.
Paper shape: below ~20 % error across grid sizes.
"""

from __future__ import annotations

from repro.experiments import join_support
from repro.experiments.common import ExperimentConfig, ExperimentResult, get_config
from repro.workloads.metrics import mean_error_ratio

ACCURACY_SCALE_RANK = -1


def run(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate the Figure 16 series."""
    config = config or get_config()
    scale = config.scales[ACCURACY_SCALE_RANK]
    ks = [min(k, config.max_k) for k in config.join_k_values]
    actuals = [join_support.actual_join_cost(config, scale, k) for k in ks]
    outer = join_support.relation_counts(config, scale, 0)

    result = ExperimentResult(
        name="fig16",
        title="Virtual-Grid k-NN-Join estimation accuracy vs grid size",
        columns=("grid_size", "virtual_grid"),
    )
    for grid_size in config.grid_sizes:
        grid = join_support.virtual_grid_estimator(config, scale, grid_size)
        estimates = [grid.estimate(outer, k) for k in ks]
        result.add_row(f"{grid_size}x{grid_size}", mean_error_ratio(estimates, actuals))
    result.notes.append("paper shape: error < ~20% across grid sizes")
    return result


def main() -> None:
    """CLI entry point."""
    print(run().format_table())


if __name__ == "__main__":
    main()
