"""Experiment harness: one module per table/figure of the paper.

Every module exposes ``run(config) -> ExperimentResult`` and can be
invoked from the command line through :mod:`repro.experiments.runner`::

    python -m repro.experiments fig11 --profile default

Profiles scale the testbed (see DESIGN.md §2): ``quick`` for smoke
tests, ``default`` for laptop-scale reproduction, ``full`` for the
closest feasible match to the paper's setup.
"""

from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    PROFILES,
    get_config,
    build_index,
    build_count_index,
    dataset,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "PROFILES",
    "get_config",
    "build_index",
    "build_count_index",
    "dataset",
]
