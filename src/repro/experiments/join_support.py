"""Shared machinery for the k-NN-Join experiments (Figures 7, 15–23).

A schema of ``n_relations`` relations is modelled by datasets generated
from consecutive seeds (relation ``r`` uses ``config.seed + r``).  The
canonical join pair of the pairwise experiments is relation 0 (outer)
joined with relation 1 (inner), both at the experiment's scale factor.
"""

from __future__ import annotations

import functools

from repro.estimators.block_sample import BlockSampleEstimator
from repro.estimators.catalog_merge import CatalogMergeEstimator
from repro.estimators.virtual_grid import VirtualGridEstimator
from repro.datasets import WORLD_BOUNDS
from repro.experiments.common import ExperimentConfig, build_count_index, build_index
from repro.index.count_index import CountIndex
from repro.index.quadtree import Quadtree
from repro.knn.locality import locality_block_indices


def relation_index(config: ExperimentConfig, scale: int, relation: int) -> Quadtree:
    """The quadtree of relation ``relation`` at a scale factor.

    Relations share the urban structure (``structure_seed``) but draw
    independent points — co-distributed entity types, like hotels and
    restaurants over one street network.
    """
    return build_index(
        scale,
        config.base_n,
        config.capacity,
        config.seed + relation,
        config.dataset_kind,
        structure_seed=config.seed,
    )


def relation_counts(config: ExperimentConfig, scale: int, relation: int) -> CountIndex:
    """The Count-Index of relation ``relation`` at a scale factor."""
    return build_count_index(
        scale,
        config.base_n,
        config.capacity,
        config.seed + relation,
        config.dataset_kind,
        structure_seed=config.seed,
    )


@functools.lru_cache(maxsize=64)
def actual_join_cost(config: ExperimentConfig, scale: int, k: int) -> int:
    """Ground-truth locality-join cost of the canonical pair at ``k``."""
    outer = relation_index(config, scale, 0)
    inner = relation_counts(config, scale, 1)
    return sum(
        int(locality_block_indices(inner, block.rect, k).shape[0])
        for block in outer.blocks
    )


@functools.lru_cache(maxsize=32)
def block_sample_estimator(
    config: ExperimentConfig, scale: int, sample_size: int
) -> BlockSampleEstimator:
    """Block-Sample estimator of the canonical pair."""
    return BlockSampleEstimator(
        relation_index(config, scale, 0),
        relation_counts(config, scale, 1),
        sample_size=sample_size,
    )


@functools.lru_cache(maxsize=32)
def catalog_merge_estimator(
    config: ExperimentConfig, scale: int, sample_size: int
) -> CatalogMergeEstimator:
    """Catalog-Merge estimator of the canonical pair."""
    return CatalogMergeEstimator(
        relation_index(config, scale, 0),
        relation_counts(config, scale, 1),
        sample_size=sample_size,
        max_k=config.max_k,
    )


@functools.lru_cache(maxsize=32)
def virtual_grid_estimator(
    config: ExperimentConfig, scale: int, grid_size: int
) -> VirtualGridEstimator:
    """Virtual-Grid catalogs of the canonical inner relation."""
    return VirtualGridEstimator(
        relation_counts(config, scale, 1),
        bounds=WORLD_BOUNDS,
        grid_size=grid_size,
        max_k=config.max_k,
    )


@functools.lru_cache(maxsize=16)
def schema_catalog_totals(
    config: ExperimentConfig, scale: int
) -> tuple[int, float, int, float, int, int]:
    """Schema-level catalog totals backing Figures 20–21.

    For an ``n_relations``-table schema at one scale factor, build the
    Catalog-Merge catalog of every ordered relation pair
    (``2 * C(n, 2)`` catalogs) and the Virtual-Grid catalogs of every
    relation (``n`` catalog sets), and total their footprints.

    Returns:
        ``(cm_bytes, cm_seconds, vg_bytes, vg_seconds, n_pair_catalogs,
        n_grid_catalogs)``.
    """
    n = config.n_relations
    cm_bytes = 0
    cm_seconds = 0.0
    n_pairs = 0
    for outer_rel in range(n):
        for inner_rel in range(n):
            if outer_rel == inner_rel:
                continue
            estimator = CatalogMergeEstimator(
                relation_index(config, scale, outer_rel),
                relation_counts(config, scale, inner_rel),
                sample_size=config.schema_sample_size,
                max_k=config.max_k,
            )
            cm_bytes += estimator.storage_bytes()
            cm_seconds += estimator.preprocessing_seconds
            n_pairs += 1
    vg_bytes = 0
    vg_seconds = 0.0
    for rel in range(n):
        grid = VirtualGridEstimator(
            relation_counts(config, scale, rel),
            bounds=WORLD_BOUNDS,
            grid_size=config.join_grid_size,
            max_k=config.max_k,
        )
        vg_bytes += grid.storage_bytes()
        vg_seconds += grid.preprocessing_seconds
    return (cm_bytes, cm_seconds, vg_bytes, vg_seconds, n_pairs, n)


def clear_caches() -> None:
    """Drop cached estimators and ground truths (bounds test memory)."""
    actual_join_cost.cache_clear()
    block_sample_estimator.cache_clear()
    catalog_merge_estimator.cache_clear()
    virtual_grid_estimator.cache_clear()
    schema_catalog_totals.cache_clear()
