"""Terminal visualization helpers.

The paper's testbed includes a visualizer that renders the GPS points
and the quadtree decomposition on top (Figure 10).  This subpackage is
the dependency-free terminal equivalent: density heatmaps of point
sets, block-boundary overlays, staircase plots of catalogs, and simple
series plots for experiment results.
"""

from repro.viz.ascii import (
    render_density,
    render_blocks,
    render_staircase,
    render_series,
)

__all__ = [
    "render_density",
    "render_blocks",
    "render_staircase",
    "render_series",
]
