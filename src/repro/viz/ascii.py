"""ASCII rendering of spatial data, index decompositions, and curves.

All renderers return plain strings (newline-joined rows) so they
compose with logging, docs, and test assertions; nothing writes to the
terminal directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry import Rect
from repro.catalog.intervals import IntervalCatalog
from repro.index.base import SpatialIndex

#: Density ramp from empty to saturated.
_RAMP = " .:-=+*#%@"


def render_density(
    points: np.ndarray,
    bounds: Rect | None = None,
    width: int = 60,
    height: int = 24,
) -> str:
    """Render a point set as a log-scaled density heatmap.

    Args:
        points: ``(n, 2)`` point array.
        bounds: Region to render (defaults to the tight bounding box).
        width: Character columns.
        height: Character rows.

    Raises:
        ValueError: On empty input without explicit bounds, or
            non-positive dimensions.
    """
    if width < 1 or height < 1:
        raise ValueError("width and height must be positive")
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    if bounds is None:
        if pts.shape[0] == 0:
            raise ValueError("bounds are required for an empty point set")
        bounds = Rect(
            float(pts[:, 0].min()),
            float(pts[:, 1].min()),
            float(pts[:, 0].max()),
            float(pts[:, 1].max()),
        )
    histogram, __, __ = np.histogram2d(
        pts[:, 0],
        pts[:, 1],
        bins=[width, height],
        range=[[bounds.x_min, bounds.x_max], [bounds.y_min, bounds.y_max]],
    )
    # Log scale: GPS-like data spans orders of magnitude per cell.
    scaled = np.log1p(histogram)
    top = scaled.max()
    if top > 0:
        scaled /= top
    rows = []
    for j in reversed(range(height)):  # top row = largest y
        row = "".join(
            _RAMP[min(int(scaled[i, j] * (len(_RAMP) - 1)), len(_RAMP) - 1)]
            for i in range(width)
        )
        rows.append(row)
    return "\n".join(rows)


def render_blocks(
    index: SpatialIndex,
    width: int = 60,
    height: int = 24,
) -> str:
    """Render an index's block boundaries over its bounds.

    Block edges are drawn with ``+ - |`` glyphs on a character grid —
    the terminal version of Figure 10's quadtree overlay.
    """
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    bounds = index.bounds
    grid = [[" "] * width for __ in range(height)]

    def to_col(x: float) -> int:
        fraction = (x - bounds.x_min) / max(bounds.width, 1e-12)
        return min(int(fraction * (width - 1)), width - 1)

    def to_row(y: float) -> int:
        fraction = (y - bounds.y_min) / max(bounds.height, 1e-12)
        return height - 1 - min(int(fraction * (height - 1)), height - 1)

    for block in index.blocks:
        r = block.rect
        c0, c1 = sorted((to_col(r.x_min), to_col(r.x_max)))
        r0, r1 = sorted((to_row(r.y_max), to_row(r.y_min)))
        for c in range(c0, c1 + 1):
            for row in (r0, r1):
                grid[row][c] = "-" if grid[row][c] == " " else grid[row][c]
        for row in range(r0, r1 + 1):
            for c in (c0, c1):
                grid[row][c] = "|" if grid[row][c] in (" ",) else grid[row][c]
        for row, c in ((r0, c0), (r0, c1), (r1, c0), (r1, c1)):
            grid[row][c] = "+"
    return "\n".join("".join(row) for row in grid)


def render_staircase(
    catalog: IntervalCatalog,
    width: int = 60,
    height: int = 12,
) -> str:
    """Render a catalog's cost-vs-k staircase (Figure 4a / 7a style)."""
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    max_k = catalog.max_k
    ks = np.unique(np.linspace(1, max_k, width).astype(np.int64))
    costs = catalog.lookup_many(ks)
    return render_series(
        ks.astype(float),
        costs,
        width=width,
        height=height,
        x_label="k",
        y_label="cost",
    )


def render_series(
    xs: Sequence[float] | np.ndarray,
    ys: Sequence[float] | np.ndarray,
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
) -> str:
    """Render one (x, y) series as a scatter of ``*`` glyphs with axes.

    Args:
        xs: X values (any order; must be finite).
        ys: Y values aligned with ``xs``.
        width: Plot columns (excluding the axis gutter).
        height: Plot rows.
        x_label: Caption under the x axis.
        y_label: Caption of the y axis.
        log_y: Plot ``log10(y)`` (for the paper's log-scale figures).

    Raises:
        ValueError: On empty/misaligned series or bad dimensions.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size == 0:
        raise ValueError("xs and ys must be equal-length, non-empty")
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    plot_y = np.log10(np.maximum(ys, 1e-300)) if log_y else ys

    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(plot_y.min()), float(plot_y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for __ in range(height)]
    for x, y in zip(xs, plot_y):
        col = min(int((x - x_lo) / x_span * (width - 1)), width - 1)
        row = height - 1 - min(int((y - y_lo) / y_span * (height - 1)), height - 1)
        grid[row][col] = "*"

    top_label = f"{y_hi:.3g}" + (" (log10)" if log_y else "")
    bottom_label = f"{y_lo:.3g}"
    lines = [f"{y_label}: {top_label}"]
    for row in grid:
        lines.append("| " + "".join(row))
    lines.append("+" + "-" * (width + 1))
    lines.append(f"  {x_label}: {x_lo:.3g} .. {x_hi:.3g}   (y min {bottom_label})")
    return "\n".join(lines)
