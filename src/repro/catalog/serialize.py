"""Catalog serialization and storage accounting.

The paper's storage-overhead figures (14, 20, 22) measure the bytes
needed to persist the catalogs.  Because ranges are contiguous, an entry
only needs its upper bound and its cost; the binary codec packs each
entry as ``(uint32 k_end, float32 cost)`` — 8 bytes per staircase step.
A JSON codec is provided for human-readable interchange.

Binary layout (little-endian)::

    uint8 version | uint32 crc32 | uint32 n_entries | n_entries x (uint32 k_end, float32 cost)

The CRC32 covers everything after the checksum field (entry count plus
entries), so truncation, bit rot, and entry-count tampering are all
detected; damaged payloads raise
:class:`~repro.resilience.errors.CatalogCorruptError` rather than ever
deserializing into a plausible-but-wrong catalog.
"""

from __future__ import annotations

import json
import struct
import zlib

from repro.catalog.intervals import IntervalCatalog
from repro.resilience.errors import CatalogCorruptError

_ENTRY = struct.Struct("<If")  # little-endian uint32 k_end, float32 cost
_HEADER = struct.Struct("<BII")  # version byte, crc32, entry count

#: Current binary codec version (bumped when the layout changes).
CODEC_VERSION = 2

#: Bytes per serialized catalog entry.
BYTES_PER_ENTRY = _ENTRY.size

#: Bytes of fixed codec header (version + checksum + entry count).
HEADER_BYTES = _HEADER.size


def catalog_storage_bytes(catalog: IntervalCatalog) -> int:
    """Bytes needed to persist ``catalog`` in the binary codec."""
    return HEADER_BYTES + catalog.n_entries * BYTES_PER_ENTRY


def catalog_to_bytes(catalog: IntervalCatalog) -> bytes:
    """Serialize to the compact binary format (checksummed, versioned)."""
    body = [struct.pack("<I", catalog.n_entries)]
    for __, k_end, cost in catalog.entries():
        body.append(_ENTRY.pack(k_end, cost))
    payload = b"".join(body)
    checksum = zlib.crc32(payload) & 0xFFFFFFFF
    return struct.pack("<BI", CODEC_VERSION, checksum) + payload


def catalog_from_bytes(data: bytes) -> IntervalCatalog:
    """Deserialize the compact binary format.

    Raises:
        CatalogCorruptError: On truncated, tampered, or malformed input
            — unknown version, payload/entry-count mismatch, or a CRC32
            checksum failure.
    """
    if len(data) < HEADER_BYTES:
        raise CatalogCorruptError(
            f"truncated catalog header: {len(data)} bytes < {HEADER_BYTES}"
        )
    version, checksum, n_entries = _HEADER.unpack_from(data, 0)
    if version != CODEC_VERSION:
        raise CatalogCorruptError(
            f"unsupported catalog codec version {version} (expected {CODEC_VERSION})"
        )
    expected = HEADER_BYTES + n_entries * BYTES_PER_ENTRY
    if len(data) != expected:
        raise CatalogCorruptError(
            f"catalog payload size mismatch: {len(data)} != {expected} "
            f"for {n_entries} entries"
        )
    payload = data[struct.calcsize("<BI"):]
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if actual != checksum:
        raise CatalogCorruptError(
            f"catalog checksum mismatch: stored {checksum:#010x}, "
            f"computed {actual:#010x}"
        )
    entries = []
    k_start = 1
    offset = HEADER_BYTES
    for __ in range(n_entries):
        k_end, cost = _ENTRY.unpack_from(data, offset)
        entries.append((k_start, k_end, cost))
        k_start = k_end + 1
        offset += BYTES_PER_ENTRY
    try:
        return IntervalCatalog(entries)
    except ValueError as exc:
        # The checksum passed but the entries are structurally invalid
        # (can only happen if corrupt bytes were re-checksummed).
        raise CatalogCorruptError(f"invalid catalog entries: {exc}") from exc


def catalog_to_json(catalog: IntervalCatalog) -> str:
    """Serialize to a human-readable JSON document."""
    return json.dumps(
        {"entries": [[ks, ke, cost] for ks, ke, cost in catalog.entries()]}
    )


def catalog_from_json(text: str) -> IntervalCatalog:
    """Deserialize the JSON document format.

    Raises:
        ValueError: On malformed JSON or entry structure.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid catalog JSON: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError("catalog JSON must be an object with an 'entries' key")
    return IntervalCatalog(tuple(entry) for entry in payload["entries"])
