"""Catalog serialization and storage accounting.

The paper's storage-overhead figures (14, 20, 22) measure the bytes
needed to persist the catalogs.  Because ranges are contiguous, an entry
only needs its upper bound and its cost; the binary codec packs each
entry as ``(uint32 k_end, float32 cost)`` — 8 bytes per staircase step —
which is the footprint :func:`catalog_storage_bytes` reports.  A JSON
codec is provided for human-readable interchange.
"""

from __future__ import annotations

import json
import struct

from repro.catalog.intervals import IntervalCatalog

_ENTRY = struct.Struct("<If")  # little-endian uint32 k_end, float32 cost
_HEADER = struct.Struct("<I")  # entry count

#: Bytes per serialized catalog entry.
BYTES_PER_ENTRY = _ENTRY.size


def catalog_storage_bytes(catalog: IntervalCatalog) -> int:
    """Bytes needed to persist ``catalog`` in the binary codec."""
    return _HEADER.size + catalog.n_entries * BYTES_PER_ENTRY


def catalog_to_bytes(catalog: IntervalCatalog) -> bytes:
    """Serialize to the compact binary format."""
    parts = [_HEADER.pack(catalog.n_entries)]
    for __, k_end, cost in catalog.entries():
        parts.append(_ENTRY.pack(k_end, cost))
    return b"".join(parts)


def catalog_from_bytes(data: bytes) -> IntervalCatalog:
    """Deserialize the compact binary format.

    Raises:
        ValueError: On truncated or malformed input.
    """
    if len(data) < _HEADER.size:
        raise ValueError("truncated catalog header")
    (n_entries,) = _HEADER.unpack_from(data, 0)
    expected = _HEADER.size + n_entries * BYTES_PER_ENTRY
    if len(data) != expected:
        raise ValueError(f"catalog payload size mismatch: {len(data)} != {expected}")
    entries = []
    k_start = 1
    offset = _HEADER.size
    for __ in range(n_entries):
        k_end, cost = _ENTRY.unpack_from(data, offset)
        entries.append((k_start, k_end, cost))
        k_start = k_end + 1
        offset += BYTES_PER_ENTRY
    return IntervalCatalog(entries)


def catalog_to_json(catalog: IntervalCatalog) -> str:
    """Serialize to a human-readable JSON document."""
    return json.dumps(
        {"entries": [[ks, ke, cost] for ks, ke, cost in catalog.entries()]}
    )


def catalog_from_json(text: str) -> IntervalCatalog:
    """Deserialize the JSON document format.

    Raises:
        ValueError: On malformed JSON or entry structure.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid catalog JSON: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError("catalog JSON must be an object with an 'entries' key")
    return IntervalCatalog(tuple(entry) for entry in payload["entries"])
