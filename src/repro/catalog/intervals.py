"""The interval catalog data structure.

An :class:`IntervalCatalog` maps every ``k`` in ``[1, max_k]`` to a cost
through a short, sorted list of constant-cost ranges.  Lookups are a
single binary search (the paper's "logarithmic time w.r.t. the number of
intervals", Section 3.3); the arrays are stored columnar so a catalog's
in-memory and on-disk footprints are a few bytes per staircase step.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.geometry.kernels import interval_gather


class CatalogLookupError(KeyError):
    """Raised when a lookup falls outside the catalog's supported k range.

    Queries with ``k > max_k`` "are directed to the Count-Index"
    (Figure 5); callers catch this error and fall back accordingly.
    """


class IntervalCatalog:
    """A staircase of ``([k_start, k_end], cost)`` entries.

    Entries must be contiguous (each range starts where the previous one
    ended) and start at ``k = 1``.  Costs may be fractional: merged and
    scaled catalogs carry real-valued estimates even though raw per-
    block catalogs are integral.

    Args:
        entries: Iterable of ``(k_start, k_end, cost)`` tuples in
            ascending k order.

    Raises:
        ValueError: If ranges are empty, overlapping, non-contiguous, or
            do not start at 1.

    Catalogs are value objects: the backing arrays are frozen
    (``writeable=False``) at construction and in every derived clone, so
    transformations may share arrays without aliasing hazards and
    ``__hash__`` stays stable for the catalog's lifetime.
    """

    __slots__ = ("_k_end", "_cost")

    def __init__(self, entries: Iterable[tuple[int, int, float]]) -> None:
        entries = list(entries)
        if not entries:
            raise ValueError("a catalog needs at least one entry")
        expected_start = 1
        k_ends: list[int] = []
        costs: list[float] = []
        for k_start, k_end, cost in entries:
            if k_start != expected_start:
                raise ValueError(
                    f"catalog ranges must be contiguous from 1: expected "
                    f"k_start={expected_start}, got {k_start}"
                )
            if k_end < k_start:
                raise ValueError(f"empty catalog range [{k_start}, {k_end}]")
            k_ends.append(int(k_end))
            costs.append(float(cost))
            expected_start = k_end + 1
        self._k_end = np.array(k_ends, dtype=np.int64)
        self._cost = np.array(costs, dtype=float)
        self._k_end.setflags(write=False)
        self._cost.setflags(write=False)

    @classmethod
    def _from_arrays(cls, k_end: np.ndarray, cost: np.ndarray) -> "IntervalCatalog":
        """Trusted constructor for pre-validated columnar data.

        Callers (the transformation methods below and the vectorized
        merges in :mod:`repro.catalog.merge`) guarantee the invariants —
        sorted positive ``k_end``, equal lengths — so this skips the
        per-entry validation loop.  Arrays are frozen before being
        adopted; already-frozen arrays may be shared between clones.
        """
        k_end = np.asarray(k_end, dtype=np.int64)
        cost = np.asarray(cost, dtype=float)
        if k_end.shape != cost.shape or k_end.ndim != 1 or k_end.shape[0] == 0:
            raise ValueError("catalog arrays must be equal-length, non-empty 1-D")
        k_end.setflags(write=False)
        cost.setflags(write=False)
        clone = cls.__new__(cls)
        clone._k_end = k_end
        clone._cost = cost
        return clone

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, k: int) -> float:
        """Return the cost for ``k`` via binary search.

        Raises:
            ValueError: If ``k < 1``.
            CatalogLookupError: If ``k`` exceeds :attr:`max_k`.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k > self.max_k:
            raise CatalogLookupError(
                f"k={k} exceeds the catalog's supported maximum {self.max_k}"
            )
        idx = int(np.searchsorted(self._k_end, k, side="left"))
        return float(self._cost[idx])

    def lookup_many(self, ks: Sequence[int] | np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lookup` over an array of k values.

        Exactly equivalent to looping :meth:`lookup` — including the
        edge cases: an empty ``ks`` returns an empty float array, and an
        invalid value raises the same error the scalar call would, at
        the first offending position (``ValueError`` for ``k < 1``,
        :class:`CatalogLookupError` for ``k > max_k``).

        Raises:
            ValueError: If any ``k < 1``.
            CatalogLookupError: If any ``k`` exceeds :attr:`max_k`.
        """
        ks = np.asarray(ks, dtype=np.int64).reshape(-1)
        if ks.size == 0:
            return np.empty(0, dtype=float)
        invalid = (ks < 1) | (ks > self.max_k)
        if invalid.any():
            k = int(ks[int(np.argmax(invalid))])
            if k < 1:
                raise ValueError(f"k must be >= 1, got {k}")
            raise CatalogLookupError(
                f"k={k} exceeds the catalog's supported maximum {self.max_k}"
            )
        # The range gather is kernel-backed (numpy searchsorted or the
        # numba bisect loop — integer-exact either way).
        return interval_gather(self._k_end, self._cost, ks)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def max_k(self) -> int:
        """Largest k the catalog covers."""
        return int(self._k_end[-1])

    @property
    def n_entries(self) -> int:
        """Number of staircase steps."""
        return int(self._k_end.shape[0])

    @property
    def k_ends(self) -> np.ndarray:
        """``(n,)`` array of range upper bounds (frozen: writes raise)."""
        return self._k_end

    @property
    def costs(self) -> np.ndarray:
        """``(n,)`` array of per-range costs (frozen: writes raise)."""
        return self._cost

    def entries(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(k_start, k_end, cost)`` tuples in order."""
        k_start = 1
        for k_end, cost in zip(self._k_end, self._cost):
            yield (k_start, int(k_end), float(cost))
            k_start = int(k_end) + 1

    def __len__(self) -> int:
        return self.n_entries

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalCatalog):
            return NotImplemented
        return bool(
            np.array_equal(self._k_end, other._k_end)
            and np.array_equal(self._cost, other._cost)
        )

    def __hash__(self) -> int:  # catalogs are value objects but mutable-free
        return hash((self._k_end.tobytes(), self._cost.tobytes()))

    def __repr__(self) -> str:
        head = ", ".join(
            f"([{ks},{ke}]->{c:g})" for ks, ke, c in list(self.entries())[:3]
        )
        suffix = ", ..." if self.n_entries > 3 else ""
        return f"IntervalCatalog({head}{suffix}; max_k={self.max_k})"

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "IntervalCatalog":
        """Return a copy with every cost multiplied by ``factor``.

        Used by sampling-based join estimators to extrapolate from a
        block sample to the whole outer relation.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        # The frozen k_end array can be shared safely; costs are fresh.
        return IntervalCatalog._from_arrays(self._k_end, self._cost * factor)

    def truncated(self, max_k: int) -> "IntervalCatalog":
        """Return a copy limited to ``k <= max_k``.

        Always a distinct catalog object (possibly sharing the frozen
        backing arrays when no truncation is needed), so callers may
        treat the result as independently owned.

        Raises:
            ValueError: If ``max_k < 1``.
        """
        if max_k < 1:
            raise ValueError(f"max_k must be >= 1, got {max_k}")
        if max_k >= self.max_k:
            return IntervalCatalog._from_arrays(self._k_end, self._cost)
        cut = int(np.searchsorted(self._k_end, max_k, side="left"))
        return IntervalCatalog._from_arrays(
            np.concatenate([self._k_end[:cut], [max_k]]).astype(np.int64),
            self._cost[: cut + 1].copy(),
        )

    def coalesced(self) -> "IntervalCatalog":
        """Merge adjacent ranges with equal cost (redundant-entry removal)."""
        if self.n_entries <= 1:
            return self
        keep = np.ones(self.n_entries, dtype=bool)
        keep[:-1] = self._cost[:-1] != self._cost[1:]
        return IntervalCatalog._from_arrays(self._k_end[keep], self._cost[keep])

    @classmethod
    def constant(cls, cost: float, max_k: int) -> "IntervalCatalog":
        """Build a single-range catalog with one cost for all k."""
        return cls([(1, max_k, cost)])

    @classmethod
    def from_profile(
        cls, profile: Sequence[tuple[int, int, float]], max_k: int | None = None
    ) -> "IntervalCatalog":
        """Build from a staircase profile, optionally padding to ``max_k``.

        Profiles produced by the k-NN machinery can stop early when the
        index runs out of points; padding extends the final cost to
        ``max_k`` so lookups stay total, matching the paper's "repeat
        until all the blocks are scanned or a sufficiently large value
        of k is encountered".
        """
        if not profile:
            raise ValueError("cannot build a catalog from an empty profile")
        entries = [(int(a), int(b), float(c)) for a, b, c in profile]
        if max_k is not None and entries[-1][1] < max_k:
            k_start, k_end, cost = entries[-1]
            entries[-1] = (k_start, max_k, cost)
        return cls(entries)
