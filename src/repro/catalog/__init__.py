"""Interval catalogs: the paper's central data structure.

A catalog is "a set of tuples of the form ``([k_start, k_end], size)``"
(Section 3.1): contiguous k-ranges over which a cost is constant,
exploiting the staircase stability of k-NN costs.  Catalogs support
logarithmic lookup, pointwise max-merge (Staircase corner catalogs),
plane-sweep sum-merge (Catalog-Merge, Section 4.2.1), and compact
serialization whose byte sizes back the paper's storage-overhead
figures (14, 20, 22).
"""

from repro.catalog.intervals import IntervalCatalog, CatalogLookupError
from repro.catalog.merge import merge_max, merge_max_fast, merge_sum, merge_sum_fast
from repro.catalog.store import CatalogStore
from repro.catalog.serialize import (
    catalog_storage_bytes,
    catalog_to_bytes,
    catalog_from_bytes,
    catalog_to_json,
    catalog_from_json,
)

__all__ = [
    "CatalogStore",
    "IntervalCatalog",
    "CatalogLookupError",
    "merge_max",
    "merge_max_fast",
    "merge_sum",
    "merge_sum_fast",
    "catalog_storage_bytes",
    "catalog_to_bytes",
    "catalog_from_bytes",
    "catalog_to_json",
    "catalog_from_json",
]
