"""Catalog merge operations.

Two merges appear in the paper:

* **Max-merge** (Section 3.2): the four per-corner Staircase catalogs
  are merged into one corners-catalog storing, for each k, the maximum
  cost among the corners.
* **Sum-merge** (Section 4.2.1): the temporary per-block locality
  catalogs of the Catalog-Merge technique are combined with a plane
  sweep over the k ranges, aggregating the cost; "a min-heap is used to
  efficiently determine the next smallest value across all the
  temporary catalogs".

Both are implemented as one plane sweep parameterized by the combining
function; the min-heap drives the sweep exactly as the paper describes.
The merged catalog covers ``[1, min(max_k over inputs)]`` — beyond the
shortest input the aggregate is undefined.

:func:`merge_max_fast` / :func:`merge_sum_fast` are vectorized
equivalents used by the preprocessing performance layer: the sweep's
segment boundaries are exactly the sorted unique ``k_end`` values (up
to the shortest input's ``max_k``), so one ``searchsorted`` per catalog
replaces the per-segment heap walk.  Costs are combined with a
sequential accumulator over catalogs — the same left-to-right
association as the reference sweep's ``sum``/``max`` — so the results
are bit-for-bit identical; the test suite fuzzes both pairs against
each other.
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

import numpy as np

from repro.catalog.intervals import IntervalCatalog


def merge_max(catalogs: Sequence[IntervalCatalog]) -> IntervalCatalog:
    """Pointwise maximum of several catalogs (corners-catalog merge)."""
    return _plane_sweep(catalogs, max)


def merge_sum(catalogs: Sequence[IntervalCatalog]) -> IntervalCatalog:
    """Pointwise sum of several catalogs (Catalog-Merge aggregation)."""
    return _plane_sweep(catalogs, sum)


def _plane_sweep(
    catalogs: Sequence[IntervalCatalog],
    combine: Callable[[list[float]], float],
) -> IntervalCatalog:
    """Sweep the k ranges of all catalogs, combining costs per segment.

    The heap holds ``(next_boundary_k_end, catalog_idx, entry_idx)``
    frontiers; at each step the sweep advances to the smallest upper
    boundary among the catalogs' current entries and emits one merged
    range, mirroring the paper's Figure 8 walk-through.

    Raises:
        ValueError: If no catalogs are given.
    """
    if not catalogs:
        raise ValueError("cannot merge zero catalogs")
    if len(catalogs) == 1:
        return catalogs[0].coalesced()

    max_k = min(c.max_k for c in catalogs)
    # Current entry index per catalog, plus a heap of upcoming range ends.
    positions = [0] * len(catalogs)
    heap: list[tuple[int, int]] = [(int(c.k_ends[0]), i) for i, c in enumerate(catalogs)]
    heapq.heapify(heap)

    entries: list[tuple[int, int, float]] = []
    k_start = 1
    while k_start <= max_k:
        current = combine([float(c.costs[positions[i]]) for i, c in enumerate(catalogs)])
        # The merged range extends to the nearest boundary of any input.
        boundary, __ = heap[0]
        k_end = min(boundary, max_k)
        if entries and entries[-1][2] == current:
            prev_start, __, __ = entries[-1]
            entries[-1] = (prev_start, k_end, current)
        else:
            entries.append((k_start, k_end, current))
        k_start = k_end + 1
        # Advance every catalog whose current range ends at the boundary.
        while heap and heap[0][0] < k_start:
            __, idx = heapq.heappop(heap)
            positions[idx] += 1
            if positions[idx] < catalogs[idx].n_entries:
                heapq.heappush(heap, (int(catalogs[idx].k_ends[positions[idx]]), idx))
    return IntervalCatalog(entries)


def merge_max_fast(catalogs: Sequence[IntervalCatalog]) -> IntervalCatalog:
    """Vectorized :func:`merge_max`; bit-for-bit identical results."""
    return _vectorized_sweep(catalogs, is_sum=False)


def merge_sum_fast(catalogs: Sequence[IntervalCatalog]) -> IntervalCatalog:
    """Vectorized :func:`merge_sum`; bit-for-bit identical results."""
    return _vectorized_sweep(catalogs, is_sum=True)


def _vectorized_sweep(
    catalogs: Sequence[IntervalCatalog], is_sum: bool
) -> IntervalCatalog:
    """Vectorized plane sweep over shared segment boundaries.

    The reference sweep emits one segment per distinct ``k_end`` value
    up to ``min(max_k over inputs)``; each catalog's cost for the
    segment ending at boundary ``b`` is the cost of its first entry
    with ``k_end >= b`` — a single ``searchsorted`` per catalog.
    Combining runs sequentially over catalogs (vectorized over k), so
    float association matches the reference exactly.

    Raises:
        ValueError: If no catalogs are given.
    """
    if not catalogs:
        raise ValueError("cannot merge zero catalogs")
    if len(catalogs) == 1:
        return catalogs[0].coalesced()

    max_k = min(c.max_k for c in catalogs)
    boundaries = np.unique(np.concatenate([c.k_ends for c in catalogs]))
    boundaries = boundaries[boundaries <= max_k]

    combined: np.ndarray | None = None
    for catalog in catalogs:
        costs = catalog.costs[
            np.searchsorted(catalog.k_ends, boundaries, side="left")
        ]
        if combined is None:
            combined = costs.copy()
        elif is_sum:
            combined += costs
        else:
            np.maximum(combined, costs, out=combined)

    # Redundant-entry elimination, as in the reference sweep.
    keep = np.ones(boundaries.shape[0], dtype=bool)
    keep[:-1] = combined[:-1] != combined[1:]
    return IntervalCatalog._from_arrays(boundaries[keep], combined[keep])


def evaluate_dense(catalog: IntervalCatalog) -> np.ndarray:
    """Expand a catalog into a dense cost array indexed by ``k - 1``.

    A testing utility: dense expansion makes merge semantics trivially
    checkable against numpy reductions.
    """
    dense = np.empty(catalog.max_k, dtype=float)
    for k_start, k_end, cost in catalog.entries():
        dense[k_start - 1 : k_end] = cost
    return dense
