"""A persistent store for named catalog collections.

Catalog preprocessing is the one expensive step of the paper's
techniques (Figures 13, 21, 23); a production optimizer computes the
catalogs offline and loads them at startup.  ``CatalogStore`` is that
persistence layer: an ordered mapping from string keys (e.g.
``"center/17"``) to :class:`~repro.catalog.intervals.IntervalCatalog`,
with a compact binary file format and a metadata dictionary for the
parameters the catalogs were built under (``max_k``, variant, index
fingerprint).

File layout (little-endian)::

    magic  b"RPCS"  | uint32 version | uint32 n_meta | uint32 n_entries
    n_meta  x (uint32 key_len, key, uint32 value_len, value)   # UTF-8
    n_entries x (uint32 key_len, key, uint32 blob_len, blob)   # catalog codec
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator, Mapping

from repro.catalog.intervals import IntervalCatalog
from repro.catalog.serialize import catalog_from_bytes, catalog_to_bytes
from repro.resilience.errors import CatalogCorruptError

_MAGIC = b"RPCS"
# Version 2: embedded catalog blobs carry a version byte and a CRC32
# checksum (see repro.catalog.serialize); version-1 stores are rejected
# as unreadable rather than risking a silent misparse.
_VERSION = 2
_U32 = struct.Struct("<I")


class CatalogStore:
    """An ordered, persistable collection of named catalogs.

    Args:
        metadata: Free-form string pairs describing build parameters.
    """

    def __init__(self, metadata: Mapping[str, str] | None = None) -> None:
        self.metadata: dict[str, str] = dict(metadata or {})
        self._catalogs: dict[str, IntervalCatalog] = {}

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def put(self, key: str, catalog: IntervalCatalog) -> None:
        """Insert or replace the catalog stored under ``key``."""
        if not key:
            raise ValueError("catalog keys must be non-empty")
        self._catalogs[key] = catalog

    def get(self, key: str) -> IntervalCatalog:
        """Return the catalog stored under ``key``.

        Raises:
            KeyError: If the key is absent.
        """
        return self._catalogs[key]

    def __contains__(self, key: str) -> bool:
        return key in self._catalogs

    def __len__(self) -> int:
        return len(self._catalogs)

    def keys(self) -> Iterator[str]:
        """Iterate the stored keys in insertion order."""
        return iter(self._catalogs)

    def storage_bytes(self) -> int:
        """Size of the serialized store."""
        return len(self.to_bytes())

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the whole store."""
        parts = [_MAGIC, _U32.pack(_VERSION), _U32.pack(len(self.metadata)),
                 _U32.pack(len(self._catalogs))]
        for key, value in self.metadata.items():
            parts.append(_pack_str(key))
            parts.append(_pack_str(value))
        for key, catalog in self._catalogs.items():
            parts.append(_pack_str(key))
            blob = catalog_to_bytes(catalog)
            parts.append(_U32.pack(len(blob)))
            parts.append(blob)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CatalogStore":
        """Deserialize a store.

        Raises:
            CatalogCorruptError: On wrong magic/version, truncated
                payloads, trailing bytes, or corrupt embedded catalogs
                (``CatalogCorruptError`` is also a ``ValueError``).
        """
        if data[:4] != _MAGIC:
            raise CatalogCorruptError("not a catalog store (bad magic)")
        offset = 4
        version, offset = _read_u32(data, offset)
        if version != _VERSION:
            raise CatalogCorruptError(f"unsupported catalog store version {version}")
        n_meta, offset = _read_u32(data, offset)
        n_entries, offset = _read_u32(data, offset)
        store = cls()
        for __ in range(n_meta):
            key, offset = _read_str(data, offset)
            value, offset = _read_str(data, offset)
            store.metadata[key] = value
        for __ in range(n_entries):
            key, offset = _read_str(data, offset)
            blob_len, offset = _read_u32(data, offset)
            blob = data[offset : offset + blob_len]
            if len(blob) != blob_len:
                raise CatalogCorruptError("truncated catalog blob")
            offset += blob_len
            store.put(key, catalog_from_bytes(blob))
        if offset != len(data):
            raise CatalogCorruptError("trailing bytes after catalog store payload")
        return store

    # ------------------------------------------------------------------
    # File round trip
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the store to ``path`` (parents created as needed)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.to_bytes())

    @classmethod
    def load(cls, path: str | Path) -> "CatalogStore":
        """Read a store from ``path``.

        Raises:
            FileNotFoundError: If the file does not exist.
            CatalogCorruptError: On malformed content.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(path)
        return cls.from_bytes(path.read_bytes())


def _pack_str(text: str) -> bytes:
    encoded = text.encode("utf-8")
    return _U32.pack(len(encoded)) + encoded


def _read_u32(data: bytes, offset: int) -> tuple[int, int]:
    if offset + 4 > len(data):
        raise CatalogCorruptError("truncated catalog store")
    (value,) = _U32.unpack_from(data, offset)
    return value, offset + 4


def _read_str(data: bytes, offset: int) -> tuple[str, int]:
    length, offset = _read_u32(data, offset)
    raw = data[offset : offset + length]
    if len(raw) != length:
        raise CatalogCorruptError("truncated catalog store string")
    try:
        return raw.decode("utf-8"), offset + length
    except UnicodeDecodeError as exc:
        raise CatalogCorruptError(f"corrupt catalog store string: {exc}") from exc
