"""Deterministic fault injection for estimators.

The resilience layer is only trustworthy if its failure paths are
exercised on purpose.  This module wraps any select or join estimator in
a proxy that — on a *seeded, reproducible schedule* — raises a chosen
error, delays the call, or corrupts the returned estimate.  The test
suite uses it to prove the engine still plans and executes every
workload query while its primary estimators misbehave.

Example::

    schedule = FaultSchedule(FaultSpec.raising(), every=1)   # every call
    chain.wrap_tier("staircase", lambda est: FaultInjectingSelectEstimator(est, schedule))

Schedules fire by call index, so a replayed workload hits the same
faults in the same places regardless of wall clock or interleaving.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

from repro.estimators.base import JoinCostEstimator, SelectCostEstimator
from repro.geometry import Point
from repro.resilience.errors import EstimationError

FaultKind = Literal["raise", "delay", "corrupt"]


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """What happens when a fault fires.

    Attributes:
        kind: ``"raise"`` (raise ``error``), ``"delay"`` (sleep
            ``delay_seconds`` then answer normally), or ``"corrupt"``
            (return ``corrupt_value`` instead of the true estimate).
        error: Exception type raised for ``"raise"`` faults.
        message: Message for raised faults.
        delay_seconds: Sleep duration for ``"delay"`` faults.
        corrupt_value: Returned value for ``"corrupt"`` faults; the
            default NaN is caught by the fallback chain's result guard.
    """

    kind: FaultKind
    error: type[Exception] = EstimationError
    message: str = "injected fault"
    delay_seconds: float = 0.0
    corrupt_value: float = float("nan")

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "delay", "corrupt"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")

    @classmethod
    def raising(cls, error: type[Exception] = EstimationError, message: str = "injected fault") -> "FaultSpec":
        """A fault that raises ``error(message)``."""
        return cls(kind="raise", error=error, message=message)

    @classmethod
    def delaying(cls, seconds: float) -> "FaultSpec":
        """A fault that delays the call by ``seconds``."""
        return cls(kind="delay", delay_seconds=seconds)

    @classmethod
    def corrupting(cls, value: float = float("nan")) -> "FaultSpec":
        """A fault that replaces the estimate with ``value``."""
        return cls(kind="corrupt", corrupt_value=value)


class FaultSchedule:
    """A deterministic schedule deciding which calls a fault hits.

    Exactly one trigger mode is chosen:

    * ``calls`` — an explicit set of 0-based call indices;
    * ``every`` — every ``every``-th call starting at ``after``;
    * ``probability`` — a seeded per-call Bernoulli draw (derived from
      ``(seed, call_index)``, so replays fire identically).

    Args:
        fault: The :class:`FaultSpec` applied when the schedule fires.
        calls: Explicit call indices.
        every: Fire period (``1`` = every call).
        after: First call index eligible to fire (for ``every`` mode).
        probability: Per-call fire probability in ``[0, 1]``.
        seed: Seed for ``probability`` mode.

    Raises:
        ValueError: If no or multiple trigger modes are given.
    """

    def __init__(
        self,
        fault: FaultSpec,
        calls: Iterable[int] | None = None,
        every: int | None = None,
        after: int = 0,
        probability: float | None = None,
        seed: int = 0,
    ) -> None:
        modes = sum(x is not None for x in (calls, every, probability))
        if modes != 1:
            raise ValueError("choose exactly one of calls=, every=, probability=")
        if every is not None and every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.fault = fault
        self._calls = frozenset(int(c) for c in calls) if calls is not None else None
        self._every = every
        self._after = after
        self._probability = probability
        self._seed = seed

    def fires(self, call_index: int) -> bool:
        """Whether the fault hits call ``call_index`` (0-based)."""
        if self._calls is not None:
            return call_index in self._calls
        if self._every is not None:
            return call_index >= self._after and (call_index - self._after) % self._every == 0
        # Seeded per-call draw: independent of call order and wall clock.
        draw = random.Random((self._seed << 32) ^ call_index).random()
        return draw < self._probability


class _FaultInjectingBase:
    """Call counting and fault application shared by both proxies."""

    def __init__(self, inner, schedules: FaultSchedule | Sequence[FaultSchedule]) -> None:
        if isinstance(schedules, FaultSchedule):
            schedules = [schedules]
        self._inner = inner
        self._schedules = list(schedules)
        #: Total calls observed (faulted or not).
        self.calls = 0
        #: Calls on which at least one fault fired.
        self.faults_fired = 0
        self.preprocessing_seconds = getattr(inner, "preprocessing_seconds", 0.0)

    @property
    def inner(self):
        """The wrapped estimator."""
        return self._inner

    def _apply(self, compute):
        """Run one call through the fault schedules."""
        index = self.calls
        self.calls += 1
        fired = [s.fault for s in self._schedules if s.fires(index)]
        if fired:
            self.faults_fired += 1
        for fault in fired:
            if fault.kind == "raise":
                raise fault.error(fault.message)
            if fault.kind == "delay":
                time.sleep(fault.delay_seconds)
        value = compute()
        for fault in fired:
            if fault.kind == "corrupt":
                value = fault.corrupt_value
        return value

    def storage_bytes(self) -> int:
        """Delegates to the wrapped estimator."""
        return self._inner.storage_bytes()


class FaultInjectingSelectEstimator(_FaultInjectingBase, SelectCostEstimator):
    """A select estimator proxy that injects scheduled faults."""

    def estimate(self, query: Point, k: int) -> float:
        """Delegate to the wrapped estimator through the fault schedules."""
        return self._apply(lambda: self._inner.estimate(query, k))


class FaultInjectingJoinEstimator(_FaultInjectingBase, JoinCostEstimator):
    """A join estimator proxy that injects scheduled faults."""

    def estimate(self, k: int) -> float:
        """Delegate to the wrapped estimator through the fault schedules."""
        return self._apply(lambda: self._inner.estimate(k))


# ----------------------------------------------------------------------
# Worker-level faults: process-boundary failures for the sharded
# serving tier.  Unlike the estimator proxies above — which corrupt a
# value *inside* one process — these kill, freeze, or slow an entire
# shard worker, so the supervisor's respawn / timeout / retry machinery
# can be exercised deterministically.
# ----------------------------------------------------------------------
WorkerFaultKind = Literal["crash", "hang", "slow"]


@dataclass(frozen=True, slots=True)
class WorkerFaultSpec:
    """One deterministic worker-process fault.

    Attributes:
        kind: ``"crash"`` (hard ``os._exit`` — the worker dies without
            cleanup, poisoning its pool), ``"hang"`` (sleep ``seconds``
            before answering; pick ``seconds`` past the serving deadline
            to simulate a wedged worker), or ``"slow"`` (sleep
            ``seconds`` then answer normally — a degraded-but-alive
            worker).
        shard: Shard the fault targets (``None`` = every shard).
        on_batch: 0-based index of the batch (chunk) the fault fires on
            within one worker process's lifetime (``None`` = every
            batch).
        incarnation: Which process incarnation of the shard worker the
            fault applies to — 0 (the default) faults only the original
            process, so a respawned worker serves cleanly (the
            "crash once mid-workload" scenario); ``None`` faults every
            incarnation (a permanently failing shard).
        seconds: Sleep duration for ``"hang"``/``"slow"`` faults.
        exit_code: Process exit code for ``"crash"`` faults.
    """

    kind: WorkerFaultKind
    shard: int | None = None
    on_batch: int | None = None
    incarnation: int | None = 0
    seconds: float = 0.05
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "hang", "slow"):
            raise ValueError(f"unknown worker fault kind {self.kind!r}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")

    def matches(self, shard: int, batch_index: int, incarnation: int) -> bool:
        """Whether this fault fires for the given serving event."""
        if self.shard is not None and shard != self.shard:
            return False
        if self.on_batch is not None and batch_index != self.on_batch:
            return False
        if self.incarnation is not None and incarnation != self.incarnation:
            return False
        return True


@dataclass(frozen=True, slots=True)
class WorkerFaultPlan:
    """A picklable bundle of :class:`WorkerFaultSpec` entries.

    Shipped to shard workers through the pool ``initargs`` (it must
    pickle), and applied by the worker at the top of every batch.
    Faults fire by ``(shard, batch index, incarnation)`` — no wall
    clock, no randomness — so a replayed workload hits the same faults
    in the same places.
    """

    specs: tuple[WorkerFaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: WorkerFaultSpec) -> "WorkerFaultPlan":
        """Build a plan from individual specs."""
        return cls(specs=tuple(specs))

    def apply(self, shard: int, batch_index: int, incarnation: int) -> None:
        """Fire every matching fault (called inside the worker process).

        ``crash`` faults exit the process immediately; ``hang`` and
        ``slow`` faults sleep, then let the batch proceed.
        """
        for spec in self.specs:
            if not spec.matches(shard, batch_index, incarnation):
                continue
            if spec.kind == "crash":
                os._exit(spec.exit_code)
            time.sleep(spec.seconds)
