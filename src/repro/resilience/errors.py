"""The estimation-layer error taxonomy.

The paper's value proposition is cost estimation *without touching the
data* — which in a production optimizer means an estimator failure must
be a typed, catchable event, never a raw ``ValueError`` or
``struct.error`` leaking out of a codec or a degenerate computation.
Every failure the estimation layer can signal derives from
:class:`EstimationError`, so callers (the planner's fallback chains, the
CLI, user code) can catch one type and degrade deliberately.

Hierarchy::

    EstimationError
    ├── InvalidQueryError (also ValueError)   — bad inputs at the boundary
    ├── CatalogCorruptError (also ValueError) — damaged persisted catalogs
    ├── StaleCatalogError                     — catalogs older than the data
    └── BudgetExceededError                   — per-call time budget blown

``InvalidQueryError`` and ``CatalogCorruptError`` double as
``ValueError`` so that pre-taxonomy call sites (and tests) catching
``ValueError`` keep working unchanged.
"""

from __future__ import annotations


class EstimationError(Exception):
    """Base class for every failure of the cost-estimation layer."""


class InvalidQueryError(EstimationError, ValueError):
    """A query or data input failed boundary validation.

    Raised for NaN/infinite coordinates, malformed data rows, ``k < 1``,
    degenerate query regions, and similar inputs that can never produce
    a meaningful estimate.
    """


class CatalogCorruptError(EstimationError, ValueError):
    """Persisted catalog bytes are damaged.

    Raised on truncation, bad magic/version, entry-count mismatches, and
    checksum failures.  A corrupt catalog must never deserialize into a
    plausible-but-wrong catalog silently.
    """


class StaleCatalogError(EstimationError):
    """Catalogs were built before the underlying data changed.

    Raised when an estimator's build-time data generation no longer
    matches the index it answers for; callers rebuild or degrade instead
    of answering from dead statistics.
    """


class BudgetExceededError(EstimationError):
    """An estimator exceeded its per-call time budget."""
