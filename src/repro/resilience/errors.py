"""The estimation-layer error taxonomy.

The paper's value proposition is cost estimation *without touching the
data* — which in a production optimizer means an estimator failure must
be a typed, catchable event, never a raw ``ValueError`` or
``struct.error`` leaking out of a codec or a degenerate computation.
Every failure the estimation layer can signal derives from
:class:`EstimationError`, so callers (the planner's fallback chains, the
CLI, user code) can catch one type and degrade deliberately.

Hierarchy::

    EstimationError
    ├── InvalidQueryError (also ValueError)   — bad inputs at the boundary
    ├── CatalogCorruptError (also ValueError) — damaged persisted catalogs
    ├── StaleCatalogError                     — catalogs older than the data
    ├── BudgetExceededError                   — per-call time budget blown
    ├── OverloadError                         — admission control shed the work
    └── ShardExhaustedError                   — no shard could answer (strict mode)

``InvalidQueryError`` and ``CatalogCorruptError`` double as
``ValueError`` so that pre-taxonomy call sites (and tests) catching
``ValueError`` keep working unchanged.
"""

from __future__ import annotations


class EstimationError(Exception):
    """Base class for every failure of the cost-estimation layer."""


class InvalidQueryError(EstimationError, ValueError):
    """A query or data input failed boundary validation.

    Raised for NaN/infinite coordinates, malformed data rows, ``k < 1``,
    degenerate query regions, and similar inputs that can never produce
    a meaningful estimate.
    """


class CatalogCorruptError(EstimationError, ValueError):
    """Persisted catalog bytes are damaged.

    Raised on truncation, bad magic/version, entry-count mismatches, and
    checksum failures.  A corrupt catalog must never deserialize into a
    plausible-but-wrong catalog silently.
    """


class StaleCatalogError(EstimationError):
    """Catalogs were built before the underlying data changed.

    Raised when an estimator's build-time data generation no longer
    matches the index it answers for; callers rebuild or degrade instead
    of answering from dead statistics.
    """


class BudgetExceededError(EstimationError):
    """An estimator exceeded its per-call time budget."""


class OverloadError(EstimationError):
    """Admission control rejected work the tier cannot absorb right now.

    Raised *before* any query is served — load shedding at the front
    door, not a mid-flight failure.  Carries a ``retry_after`` hint
    (seconds) derived from the tier's observed drain rate so callers can
    back off intelligently instead of hammering a saturated tier.

    Attributes:
        retry_after: Suggested wait before retrying, in seconds
            (``None`` when the tier cannot estimate one).
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ShardExhaustedError(EstimationError):
    """Every eligible shard failed and degradation was disabled.

    Under the default graceful-degradation policy an unavailable shard's
    queries are answered by the coordinator's local fallback tier and
    marked degraded; under ``strict`` serving that degradation is an
    error, and this is it.  Names the shards that failed.
    """
