"""Input guards: validate queries and data at the engine boundary.

Guards follow one policy throughout:

* inputs that can never produce a meaningful answer (non-finite
  coordinates, ``k < 1``, inverted regions) **always raise**
  :class:`~repro.resilience.errors.InvalidQueryError`;
* inputs that are suspicious but well-defined (``k`` larger than the
  relation, focal points far outside the indexed space, zero-area query
  regions) are **noted** — the notes ride on the
  :class:`~repro.engine.planner.PlanExplanation` as degraded-mode
  provenance — unless ``strict=True``, in which case they raise too.

The split keeps the default engine permissive (a k-NN query outside the
indexed space is legal and answerable) while giving operators a switch
that turns every anomaly into a hard error.
"""

from __future__ import annotations

import math
import numbers

import numpy as np

from repro.geometry import Point, Rect
from repro.resilience.errors import InvalidQueryError

#: A focal point farther than this many bounds-diagonals from the
#: indexed space is flagged as suspicious (estimates degrade to global
#: density there, and a typo'd coordinate is the most likely cause).
FAR_QUERY_DIAGONALS = 4.0


def require_finite_coordinates(x: float, y: float, what: str = "query point") -> None:
    """Reject non-finite coordinates with a typed error.

    Raises:
        InvalidQueryError: If either coordinate is NaN or infinite.
    """
    if not (math.isfinite(x) and math.isfinite(y)):
        raise InvalidQueryError(
            f"{what} coordinates must be finite, got ({x}, {y})"
        )


def require_valid_k(k: int, what: str = "k") -> None:
    """Reject non-positive or non-integral k.

    Raises:
        InvalidQueryError: If ``k`` is not a positive integer.
    """
    if isinstance(k, bool) or not isinstance(k, numbers.Integral):
        raise InvalidQueryError(f"{what} must be an integer, got {k!r}")
    if k < 1:
        raise InvalidQueryError(f"{what} must be >= 1, got {k}")


def require_valid_region(region: Rect, strict: bool = False) -> list[str]:
    """Validate a query region; returns notes for suspicious shapes.

    ``Rect`` already rejects inverted and non-finite bounds at
    construction, so the remaining check is degeneracy: a zero-area
    region is well-defined (it selects points on a segment) but almost
    always a bug in the caller.

    Raises:
        InvalidQueryError: On a zero-area region when ``strict``.
    """
    notes: list[str] = []
    if region.area == 0.0:
        message = f"query region {region} has zero area"
        if strict:
            raise InvalidQueryError(message)
        notes.append(message)
    return notes


def check_query_point(query: Point, bounds: Rect | None, strict: bool = False) -> list[str]:
    """Flag focal points far outside the indexed space.

    Raises:
        InvalidQueryError: When ``strict`` and the point is far outside.
    """
    require_finite_coordinates(query.x, query.y)
    if bounds is None:
        return []
    diagonal = bounds.diagonal
    if diagonal == 0.0:
        return []
    dx = max(bounds.x_min - query.x, 0.0, query.x - bounds.x_max)
    dy = max(bounds.y_min - query.y, 0.0, query.y - bounds.y_max)
    distance = math.hypot(dx, dy)
    if distance > FAR_QUERY_DIAGONALS * diagonal:
        message = (
            f"focal point ({query.x:g}, {query.y:g}) lies "
            f"{distance / diagonal:.1f} bounds-diagonals outside the "
            "indexed space; estimates degrade to global density"
        )
        if strict:
            raise InvalidQueryError(message)
        return [message]
    return []


def check_k_against_table(k: int, n_rows: int, strict: bool = False) -> list[str]:
    """Flag ``k`` exceeding the relation size.

    The query is well-defined — it returns every row — but the caller
    almost certainly meant something else, and catalogs cannot cover it.

    Raises:
        InvalidQueryError: If ``k < 1``, or when ``strict`` and
            ``k > n_rows`` for a non-empty relation.
    """
    require_valid_k(k)
    if 0 < n_rows < k:
        message = f"k={k} exceeds the relation's {n_rows} rows; the result holds every row"
        if strict:
            raise InvalidQueryError(message)
        return [message]
    return []


def guard_select_query(query, n_rows: int, bounds: Rect | None, strict: bool = False) -> list[str]:
    """Validate a :class:`~repro.engine.queries.KnnSelectQuery`.

    Args:
        query: The query specification.
        n_rows: Row count of the queried relation.
        bounds: Indexed bounds of the relation (``None`` when empty).
        strict: Escalate suspicious inputs to errors.

    Returns:
        Degraded-mode notes (empty when the query is unremarkable).

    Raises:
        InvalidQueryError: On inputs that cannot be answered (always)
            or suspicious ones (only when ``strict``).
    """
    notes = check_query_point(query.query, bounds, strict)
    notes += check_k_against_table(query.k, n_rows, strict)
    if query.region is not None:
        notes += require_valid_region(query.region, strict)
    if n_rows == 0:
        notes.append("relation is empty; the result is empty for every k")
    return notes


def guard_range_query(query, n_rows: int, strict: bool = False) -> list[str]:
    """Validate a :class:`~repro.engine.queries.RangeQuery`."""
    notes = require_valid_region(query.region, strict)
    if n_rows == 0:
        notes.append("relation is empty; the result is empty for every region")
    return notes


def guard_join_query(query, n_outer: int, n_inner: int, strict: bool = False) -> list[str]:
    """Validate a :class:`~repro.engine.queries.KnnJoinQuery`."""
    notes = check_k_against_table(query.k, n_inner, strict)
    if n_outer == 0 or n_inner == 0:
        notes.append("a join side is empty; the join result is trivial")
    return notes


def guard_estimate_inputs(query: Point, k: int) -> None:
    """The per-call boundary check every select estimator applies.

    Cheap enough (two ``isfinite`` calls and an integer compare) to run
    on the estimation hot path.

    Raises:
        InvalidQueryError: On a non-finite focal point or invalid ``k``.
    """
    require_finite_coordinates(query.x, query.y)
    require_valid_k(k)


def require_valid_ks(ks: np.ndarray, what: str = "k") -> None:
    """Vectorized :func:`require_valid_k` over an integer array.

    Raises on the *first* offending element (in array order) with the
    exact message a scalar loop would produce there.

    Raises:
        InvalidQueryError: If any ``k < 1``.
    """
    ks = np.asarray(ks)
    bad = ks < 1
    if bad.any():
        require_valid_k(int(ks[int(np.argmax(bad))]), what)


def guard_estimate_batch(points: np.ndarray, ks: np.ndarray) -> None:
    """Batch counterpart of :func:`guard_estimate_inputs`.

    Mirrors a loop of scalar guards exactly: the first query (in batch
    order) with a non-finite coordinate *or* an invalid k raises, and at
    that query the coordinate check comes before the k check — so the
    error type and message match the scalar loop bit for bit.

    Args:
        points: ``(m, 2)`` float array of focal coordinates.
        ks: ``(m,)`` integer array of per-query k values.

    Raises:
        InvalidQueryError: On any non-finite focal point or ``k < 1``.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    ks = np.asarray(ks)
    bad = ~np.isfinite(points).all(axis=1) | (ks < 1)
    if bad.any():
        i = int(np.argmax(bad))
        require_finite_coordinates(float(points[i, 0]), float(points[i, 1]))
        require_valid_k(int(ks[i]))
