"""Estimator fallback chains with health tracking.

A wrong or crashing estimator must never take down query planning.
``FallbackSelectEstimator`` and ``FallbackJoinEstimator`` wrap an
ordered list of estimation *tiers* (e.g. Staircase → Density →
Uniform-Model) and degrade through them:

* a tier that raises, returns a non-finite/negative estimate, or blows
  the per-call time budget is recorded as failed and the next tier is
  tried;
* per-tier health is tracked with a circuit breaker — after
  ``breaker_threshold`` *consecutive* failures a tier is skipped for
  ``breaker_cooldown`` calls, so a persistently broken estimator stops
  costing a failed attempt (and its latency) on every query;
* if every tier fails, the chain answers with a cheap **guaranteed
  bound** instead of raising — the full-scan block count for selects,
  the all-pairs block product for joins — following the
  bounds-over-best-effort principle of the I/O-lower-bound literature:
  degrade toward a correct bound, not toward an exception;
* every call records a :class:`FallbackOutcome` naming the tier that
  answered and what happened to the tiers above it — the provenance the
  planner copies onto :class:`~repro.engine.planner.PlanExplanation`.

Tiers are supplied as ``(name, factory)`` pairs and built lazily: a
tier whose *construction* crashes (degenerate blocks, empty relations)
counts as a failed attempt exactly like a crashing ``estimate()``, and
the healthy tiers below it never pay its build cost unless needed.

When the primary tier is healthy the chain is transparent: the output
equals the primary estimator's output exactly (the zero-overhead-when-
healthy invariant, property-tested in ``tests/test_resilience_fallback``).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.estimators.base import (
    JoinCostEstimator,
    SelectCostEstimator,
    normalize_batch_args,
)
from repro.geometry import Point
from repro.resilience.errors import BudgetExceededError, EstimationError
from repro.resilience.guards import guard_estimate_batch, guard_estimate_inputs, require_valid_k

#: Consecutive failures before a tier's circuit breaker opens.
DEFAULT_BREAKER_THRESHOLD = 3
#: Calls a tier is skipped for once its breaker has opened.
DEFAULT_BREAKER_COOLDOWN = 16

#: Terminal pseudo-tier name used when every real tier failed.
GUARANTEED_BOUND_TIER = "guaranteed-bound"


@dataclass(frozen=True, slots=True)
class TierAttempt:
    """One tier's part in answering (or failing to answer) a call."""

    tier: str
    outcome: str  # "ok", "skipped (circuit open)", or an error summary


@dataclass
class FallbackOutcome:
    """Provenance of one fallback-chain estimate.

    Attributes:
        tier: Name of the tier that produced the answer.
        degraded: Whether a non-primary tier (or the guaranteed bound)
            answered.
        attempts: Per-tier record, in chain order, up to and including
            the answering tier.
    """

    tier: str
    degraded: bool
    attempts: list[TierAttempt] = field(default_factory=list)

    def describe(self) -> str:
        """One-line human-readable provenance."""
        if not self.degraded:
            return f"answered by primary tier {self.tier!r}"
        failed = "; ".join(
            f"{a.tier}: {a.outcome}" for a in self.attempts if a.tier != self.tier
        )
        return f"degraded to tier {self.tier!r} ({failed})"


@dataclass
class FallbackBatchOutcome:
    """Provenance of one fallback-chain :meth:`estimate_batch` call.

    The batch path partitions failures: a tier that errors as a whole
    moves its entire pending sub-batch to the next tier, while a tier
    returning per-element garbage (non-finite or negative values) moves
    *only those elements* down.  The outcome therefore carries one tier
    label per query rather than a single chain-wide answer.

    Attributes:
        tiers: Per-query name of the answering tier, in batch order.
        degraded: Per-query bool — ``True`` where a non-primary tier
            (or the guaranteed bound) answered.
        attempts: Chain-order record of what each tried tier did for
            the batch as a whole.
    """

    tiers: list[str]
    degraded: np.ndarray
    attempts: list[TierAttempt] = field(default_factory=list)

    def outcome_for(self, i: int) -> FallbackOutcome:
        """Collapse the batch provenance to query ``i``'s scalar view."""
        return FallbackOutcome(
            tier=self.tiers[i],
            degraded=bool(self.degraded[i]),
            attempts=self.attempts,
        )

    def describe(self) -> str:
        """One-line human-readable batch provenance."""
        n = len(self.tiers)
        degraded = int(np.count_nonzero(self.degraded))
        if degraded == 0:
            return f"all {n} queries answered by the primary tier"
        return f"{degraded} of {n} queries degraded past the primary tier"


class _TierHealth:
    """Failure counters and circuit-breaker state for one tier.

    All mutations go through one internal lock: the counters are shared
    by every thread of a concurrent coordinator (the sharded serving
    tier serves shards from a thread pool, and several threads may
    degrade through the same fallback chain at once), and unlocked
    ``+=`` read-modify-write cycles lose updates under contention.
    Reads of a single counter are plain attribute reads — they are
    atomic under the GIL and only ever observe a consistent int.
    """

    __slots__ = (
        "consecutive_failures",
        "cooldown_remaining",
        "total_failures",
        "total_calls",
        "_lock",
    )

    def __init__(self) -> None:
        self.consecutive_failures = 0
        self.cooldown_remaining = 0
        self.total_failures = 0
        self.total_calls = 0
        self._lock = threading.Lock()

    @property
    def circuit_open(self) -> bool:
        return self.cooldown_remaining > 0

    def record_success(self) -> None:
        with self._lock:
            self.total_calls += 1
            self.consecutive_failures = 0

    def record_failure(self, threshold: int, cooldown: int) -> None:
        with self._lock:
            self.total_calls += 1
            self.total_failures += 1
            self.consecutive_failures += 1
            if self.consecutive_failures >= threshold:
                self.cooldown_remaining = cooldown

    def tick_skip(self) -> None:
        with self._lock:
            self.cooldown_remaining -= 1


class _FallbackChain:
    """Shared machinery of the select and join fallback estimators."""

    def __init__(
        self,
        tiers: Sequence[tuple[str, Callable[[], object]]],
        guaranteed_bound: Callable[[], float] | float,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown: int = DEFAULT_BREAKER_COOLDOWN,
        time_budget_seconds: float | None = None,
    ) -> None:
        if not tiers:
            raise ValueError("a fallback chain needs at least one tier")
        if breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {breaker_threshold}")
        if breaker_cooldown < 1:
            raise ValueError(f"breaker_cooldown must be >= 1, got {breaker_cooldown}")
        if time_budget_seconds is not None and time_budget_seconds <= 0:
            raise ValueError(f"time_budget_seconds must be positive, got {time_budget_seconds}")
        seen: set[str] = set()
        for name, __ in tiers:
            if name in seen:
                raise ValueError(f"duplicate tier name {name!r}")
            seen.add(name)
        self._tiers: list[tuple[str, Callable[[], object]]] = list(tiers)
        self._instances: dict[str, object] = {}
        self._build_lock = threading.Lock()
        self._health: dict[str, _TierHealth] = {name: _TierHealth() for name, __ in tiers}
        self._bound = guaranteed_bound
        self._threshold = breaker_threshold
        self._cooldown = breaker_cooldown
        self._budget = time_budget_seconds
        # Per-thread provenance: a chain shared by a concurrent
        # coordinator must not let thread A's batch overwrite the
        # outcome thread B is about to read back.
        self._outcomes = threading.local()

    # ------------------------------------------------------------------
    # Per-call provenance (thread-local, so concurrent callers each see
    # the outcome of *their own* last call)
    # ------------------------------------------------------------------
    @property
    def last_outcome(self) -> FallbackOutcome | None:
        """Provenance of the calling thread's most recent :meth:`estimate`."""
        return getattr(self._outcomes, "scalar", None)

    @last_outcome.setter
    def last_outcome(self, value: FallbackOutcome | None) -> None:
        self._outcomes.scalar = value

    @property
    def last_batch_outcome(self) -> FallbackBatchOutcome | None:
        """Provenance of the calling thread's most recent batch call."""
        return getattr(self._outcomes, "batch", None)

    @last_batch_outcome.setter
    def last_batch_outcome(self, value: FallbackBatchOutcome | None) -> None:
        self._outcomes.batch = value

    # ------------------------------------------------------------------
    # Introspection and the fault-injection seam
    # ------------------------------------------------------------------
    @property
    def tier_names(self) -> tuple[str, ...]:
        """Chain order, primary first (excludes the guaranteed bound)."""
        return tuple(name for name, __ in self._tiers)

    @property
    def primary_tier(self) -> str:
        """Name of the first (preferred) tier."""
        return self._tiers[0][0]

    def health(self, tier: str) -> _TierHealth:
        """The health record of one tier (for monitoring and tests)."""
        return self._health[tier]

    def tier_instance(self, tier: str) -> object:
        """Build (if needed) and return one tier's estimator.

        Lazy construction is serialized so two threads racing on a cold
        tier cannot build (and pay for) two instances.
        """
        if tier not in self._instances:
            with self._build_lock:
                if tier not in self._instances:
                    factory = dict(self._tiers)[tier]
                    self._instances[tier] = factory()
        return self._instances[tier]

    def wrap_tier(self, tier: str, wrap: Callable[[object], object]) -> None:
        """Replace a tier's estimator with ``wrap(estimator)``.

        The seam the fault-injection harness uses: wrap the built
        instance in a :class:`~repro.resilience.faultinject` proxy
        without the chain knowing.
        """
        self._instances[tier] = wrap(self.tier_instance(tier))

    def reset_health(self) -> None:
        """Clear all failure counters and close every circuit breaker."""
        self._health = {name: _TierHealth() for name, __ in self._tiers}

    # ------------------------------------------------------------------
    # The chain
    # ------------------------------------------------------------------
    def _run(self, call: Callable[[object], float]) -> float:
        """Try each tier in order; fall through to the guaranteed bound."""
        attempts: list[TierAttempt] = []
        for position, (name, __) in enumerate(self._tiers):
            health = self._health[name]
            if health.circuit_open:
                health.tick_skip()
                attempts.append(TierAttempt(name, "skipped (circuit open)"))
                continue
            start = time.perf_counter()
            try:
                estimator = self.tier_instance(name)
                value = float(call(estimator))
            except EstimationError as exc:
                health.record_failure(self._threshold, self._cooldown)
                attempts.append(TierAttempt(name, f"{type(exc).__name__}: {exc}"))
                continue
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                health.record_failure(self._threshold, self._cooldown)
                attempts.append(TierAttempt(name, f"{type(exc).__name__}: {exc}"))
                continue
            elapsed = time.perf_counter() - start
            if self._budget is not None and elapsed > self._budget:
                health.record_failure(self._threshold, self._cooldown)
                attempts.append(
                    TierAttempt(
                        name,
                        f"BudgetExceededError: took {elapsed:.3f}s "
                        f"(budget {self._budget:.3f}s)",
                    )
                )
                continue
            if not math.isfinite(value) or value < 0.0:
                health.record_failure(self._threshold, self._cooldown)
                attempts.append(TierAttempt(name, f"invalid estimate {value!r}"))
                continue
            health.record_success()
            attempts.append(TierAttempt(name, "ok"))
            self.last_outcome = FallbackOutcome(
                tier=name, degraded=position > 0, attempts=attempts
            )
            return value
        bound = float(self._bound() if callable(self._bound) else self._bound)
        attempts.append(TierAttempt(GUARANTEED_BOUND_TIER, "ok"))
        self.last_outcome = FallbackOutcome(
            tier=GUARANTEED_BOUND_TIER, degraded=True, attempts=attempts
        )
        return bound

    def _run_batch(
        self, pts: np.ndarray, ks: np.ndarray, call: Callable[[object, np.ndarray, np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """Try each tier on the still-unanswered sub-batch.

        A tier exception (or a blown time budget) moves the *whole*
        pending sub-batch to the next tier; per-element garbage — a
        non-finite or negative value — moves only the offending elements
        down.  Whatever survives every tier is answered by the
        guaranteed bound, so the batch never raises for
        estimator-internal failures.

        Health accounting treats one batch call to a tier as one call:
        a tier records one success when it cleanly answered everything
        it was given and one failure otherwise, so circuit-breaker
        thresholds keep their "consecutive calls" meaning under batched
        serving.
        """
        m = pts.shape[0]
        out = np.empty(m, dtype=float)
        tiers_used = [GUARANTEED_BOUND_TIER] * m
        degraded = np.zeros(m, dtype=bool)
        attempts: list[TierAttempt] = []
        pending = np.arange(m)
        for position, (name, __) in enumerate(self._tiers):
            if pending.shape[0] == 0:
                break
            health = self._health[name]
            if health.circuit_open:
                health.tick_skip()
                attempts.append(TierAttempt(name, "skipped (circuit open)"))
                continue
            start = time.perf_counter()
            try:
                estimator = self.tier_instance(name)
                values = np.asarray(
                    call(estimator, pts[pending], ks[pending]), dtype=float
                ).reshape(-1)
                if values.shape[0] != pending.shape[0]:
                    raise EstimationError(
                        f"tier returned {values.shape[0]} estimates for "
                        f"{pending.shape[0]} queries"
                    )
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                health.record_failure(self._threshold, self._cooldown)
                attempts.append(TierAttempt(name, f"{type(exc).__name__}: {exc}"))
                continue
            elapsed = time.perf_counter() - start
            if self._budget is not None and elapsed > self._budget:
                health.record_failure(self._threshold, self._cooldown)
                attempts.append(
                    TierAttempt(
                        name,
                        f"BudgetExceededError: took {elapsed:.3f}s "
                        f"(budget {self._budget:.3f}s)",
                    )
                )
                continue
            bad = ~np.isfinite(values) | (values < 0.0)
            good = ~bad
            answered = pending[good]
            out[answered] = values[good]
            for i in answered:
                tiers_used[i] = name
            degraded[answered] = position > 0
            n_bad = int(np.count_nonzero(bad))
            if n_bad:
                health.record_failure(self._threshold, self._cooldown)
                attempts.append(
                    TierAttempt(
                        name,
                        f"invalid estimate for {n_bad} of "
                        f"{pending.shape[0]} queries",
                    )
                )
            else:
                health.record_success()
                attempts.append(TierAttempt(name, "ok"))
            pending = pending[bad]
        if pending.shape[0]:
            bound = float(self._bound() if callable(self._bound) else self._bound)
            out[pending] = bound
            degraded[pending] = True
            attempts.append(TierAttempt(GUARANTEED_BOUND_TIER, "ok"))
        self.last_batch_outcome = FallbackBatchOutcome(
            tiers=tiers_used, degraded=degraded, attempts=attempts
        )
        return out

    # ------------------------------------------------------------------
    # Shared estimator bookkeeping
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Storage of every tier built so far."""
        return sum(
            est.storage_bytes()
            for est in self._instances.values()
            if hasattr(est, "storage_bytes")
        )

    @property
    def preprocessing_seconds(self) -> float:
        """Preprocessing spent by every tier built so far."""
        return sum(
            getattr(est, "preprocessing_seconds", 0.0)
            for est in self._instances.values()
        )

    @preprocessing_seconds.setter
    def preprocessing_seconds(self, value: float) -> None:
        # The SelectCostEstimator ABC declares a class attribute; the
        # chain derives the value from its tiers, so assignment is a no-op.
        pass

    @property
    def preprocessing_stats(self):
        """Merged :class:`~repro.perf.PreprocessingStats` of built tiers.

        Counters and phase timings are summed across every tier built so
        far; returns ``None`` when no built tier carries stats.
        """
        from repro.perf import PreprocessingStats

        collected = [
            stats
            for stats in (
                getattr(est, "preprocessing_stats", None)
                for est in self._instances.values()
            )
            if stats is not None
        ]
        if not collected:
            return None
        return PreprocessingStats.merged(collected)


class FallbackSelectEstimator(_FallbackChain, SelectCostEstimator):
    """A k-NN-Select estimator that degrades through a tier chain.

    Args:
        tiers: Ordered ``(name, factory)`` pairs; each factory builds a
            :class:`~repro.estimators.base.SelectCostEstimator` lazily.
        guaranteed_bound: The terminal answer when every tier fails —
            for selects, the relation's block count (a full scan never
            costs more).  A float or a zero-argument callable.
        breaker_threshold: Consecutive failures that open a tier's
            circuit breaker.
        breaker_cooldown: Calls a tier is skipped once its breaker opens.
        time_budget_seconds: Per-call budget; a tier exceeding it is
            treated as failed (``None`` disables the budget).
    """

    def estimate(self, query: Point, k: int) -> float:
        """Estimate via the first healthy tier; never raises for
        estimator-internal failures (boundary validation still applies).

        Raises:
            InvalidQueryError: On a non-finite focal point or ``k < 1``
                — invalid inputs are the caller's bug, not a failure to
                degrade around.
        """
        guard_estimate_inputs(query, k)
        return self._run(lambda est: est.estimate(query, k))

    def estimate_batch(self, queries, ks) -> np.ndarray:
        """Batched estimation with per-sub-batch degradation.

        Unlike a loop of scalar :meth:`estimate` calls — which pays the
        whole chain walk per query — a tier failure here partitions the
        batch: the failing elements (or, on a tier-wide exception, the
        whole pending sub-batch) move to the next tier while everything
        the tier answered cleanly stays.  Per-query provenance is
        recorded on :attr:`last_batch_outcome`.

        Raises:
            InvalidQueryError: On any non-finite focal point or
                ``k < 1`` — invalid inputs are the caller's bug, not a
                failure to degrade around.
        """
        pts, ks_arr = normalize_batch_args(queries, ks)
        guard_estimate_batch(pts, ks_arr)
        return self._run_batch(
            pts, ks_arr, lambda est, p, k: est.estimate_batch(p, k)
        )


class FallbackJoinEstimator(_FallbackChain, JoinCostEstimator):
    """A k-NN-Join estimator that degrades through a tier chain.

    Args:
        tiers: Ordered ``(name, factory)`` pairs; each factory builds a
            :class:`~repro.estimators.base.JoinCostEstimator` lazily.
        guaranteed_bound: The terminal answer when every tier fails —
            for joins, ``outer blocks x inner blocks`` (every outer
            block scanning the whole inner relation).
        breaker_threshold: Consecutive failures that open a tier's
            circuit breaker.
        breaker_cooldown: Calls a tier is skipped once its breaker opens.
        time_budget_seconds: Per-call budget; a tier exceeding it is
            treated as failed (``None`` disables the budget).
    """

    def estimate(self, k: int) -> float:
        """Estimate via the first healthy tier.

        Raises:
            InvalidQueryError: If ``k < 1``.
        """
        require_valid_k(k)
        return self._run(lambda est: est.estimate(k))


def budget_check(start: float, budget: float | None, what: str = "estimation") -> None:
    """Raise when ``budget`` seconds have elapsed since ``start``.

    A cooperative checkpoint long-running estimators can call between
    phases so a budget violation surfaces *during* the call instead of
    only after it returns.

    Raises:
        BudgetExceededError: When the elapsed time exceeds the budget.
    """
    if budget is None:
        return
    elapsed = time.perf_counter() - start
    if elapsed > budget:
        raise BudgetExceededError(
            f"{what} exceeded its time budget: {elapsed:.3f}s > {budget:.3f}s"
        )
