"""The resilient estimation layer.

Cost estimation happens without touching the data — so in a production
engine a wrong or crashing estimator must never take down query
planning.  This subpackage provides the four pieces that make the
estimation layer survivable:

* :mod:`~repro.resilience.errors` — the typed error taxonomy every
  estimation failure is expressed in;
* :mod:`~repro.resilience.guards` — boundary validation of queries and
  data (NaN/inf coordinates, ``k`` vs relation size, degenerate
  regions), with a strict/permissive policy switch;
* :mod:`~repro.resilience.fallback` — per-relation estimator fallback
  chains with circuit breakers, time budgets, a guaranteed-bound
  terminal tier, and per-call provenance;
* :mod:`~repro.resilience.faultinject` — the deterministic
  fault-injection harness the test suite uses to prove all of the above.

Only the dependency-free leaves (``errors``, ``guards``) are imported
eagerly; ``fallback`` and ``faultinject`` subclass the estimator ABCs,
so they are loaded lazily (PEP 562) to keep this package importable
from anywhere in the layer stack — including from inside
``repro.catalog`` and ``repro.estimators`` themselves.
"""

from importlib import import_module

from repro.resilience.errors import (
    BudgetExceededError,
    CatalogCorruptError,
    EstimationError,
    InvalidQueryError,
    OverloadError,
    ShardExhaustedError,
    StaleCatalogError,
)
from repro.resilience.guards import (
    guard_estimate_batch,
    guard_estimate_inputs,
    guard_join_query,
    guard_range_query,
    guard_select_query,
    require_finite_coordinates,
    require_valid_k,
    require_valid_ks,
)

_LAZY = {
    "FallbackSelectEstimator": "fallback",
    "FallbackJoinEstimator": "fallback",
    "FallbackOutcome": "fallback",
    "FallbackBatchOutcome": "fallback",
    "TierAttempt": "fallback",
    "GUARANTEED_BOUND_TIER": "fallback",
    "FaultSpec": "faultinject",
    "FaultSchedule": "faultinject",
    "FaultInjectingSelectEstimator": "faultinject",
    "FaultInjectingJoinEstimator": "faultinject",
    "WorkerFaultSpec": "faultinject",
    "WorkerFaultPlan": "faultinject",
}

__all__ = [
    "EstimationError",
    "InvalidQueryError",
    "CatalogCorruptError",
    "StaleCatalogError",
    "BudgetExceededError",
    "OverloadError",
    "ShardExhaustedError",
    "guard_select_query",
    "guard_join_query",
    "guard_range_query",
    "guard_estimate_batch",
    "guard_estimate_inputs",
    "require_finite_coordinates",
    "require_valid_k",
    "require_valid_ks",
    *_LAZY,
]


def __getattr__(name: str):
    if name in _LAZY:
        module = import_module(f"repro.resilience.{_LAZY[name]}")
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
