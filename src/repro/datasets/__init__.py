"""Dataset generation and loading.

The paper evaluates on a 0.1-billion-point OpenStreetMap GPS dump.  That
dataset is not redistributable at this scale, so the reproduction ships
a deterministic synthetic generator (:func:`generate_osm_like`) whose
spatial distribution mimics GPS traces: dense anisotropic clusters
("cities"), elongated corridors ("roads"), and a sparse uniform
background.  See DESIGN.md §2 for why this substitution preserves the
behaviours under study.
"""

from repro.datasets.synthetic import (
    WORLD_BOUNDS,
    generate_osm_like,
    generate_uniform,
    generate_gaussian_clusters,
    generate_skewed,
    scale_factor_points,
)
from repro.datasets.loader import save_points_csv, load_points_csv

__all__ = [
    "WORLD_BOUNDS",
    "generate_osm_like",
    "generate_uniform",
    "generate_gaussian_clusters",
    "generate_skewed",
    "scale_factor_points",
    "save_points_csv",
    "load_points_csv",
]
