"""Synthetic spatial point generators.

All generators are deterministic given a seed and return ``(n, 2)``
float arrays inside :data:`WORLD_BOUNDS`, a fixed square universe
standing in for "the bounds of the earth are fixed" (Section 4.3's
footnote), which lets virtual grids be laid out identically for every
relation.

``generate_osm_like`` is the reproduction's stand-in for the paper's
OpenStreetMap GPS dump (see DESIGN.md §2): a hierarchical mixture of

* *city* clusters — isotropic Gaussians of widely varying spread and
  weight (Zipf-like population sizes),
* *road* corridors — points scattered tightly around random line
  segments connecting city centers, and
* a sparse uniform background,

which reproduces the strongly non-uniform, multi-scale density field
that makes k-NN cost estimation hard (Figure 10 of the paper shows the
same structure in real GPS data).
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect

#: The fixed universe used by every generator and by virtual grids.
WORLD_BOUNDS = Rect(0.0, 0.0, 1000.0, 1000.0)


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize a seed (or generator) into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _clip_to_world(points: np.ndarray, bounds: Rect) -> np.ndarray:
    """Clamp points into the universe (GPS noise near borders)."""
    np.clip(points[:, 0], bounds.x_min, bounds.x_max, out=points[:, 0])
    np.clip(points[:, 1], bounds.y_min, bounds.y_max, out=points[:, 1])
    return points


def generate_uniform(
    n: int, seed: int | np.random.Generator | None = 0, bounds: Rect = WORLD_BOUNDS
) -> np.ndarray:
    """Generate ``n`` points uniformly distributed over ``bounds``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = _rng(seed)
    xs = rng.uniform(bounds.x_min, bounds.x_max, size=n)
    ys = rng.uniform(bounds.y_min, bounds.y_max, size=n)
    return np.column_stack([xs, ys])


def generate_gaussian_clusters(
    n: int,
    n_clusters: int = 20,
    seed: int | np.random.Generator | None = 0,
    bounds: Rect = WORLD_BOUNDS,
    spread_fraction: float = 0.03,
) -> np.ndarray:
    """Generate ``n`` points from a mixture of isotropic Gaussian clusters.

    Cluster weights follow a Zipf-like law so a few clusters dominate,
    as city populations do.

    Args:
        n: Total number of points.
        n_clusters: Number of mixture components.
        seed: Seed or generator for determinism.
        bounds: Universe rectangle.
        spread_fraction: Base cluster standard deviation as a fraction
            of the universe side length.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    rng = _rng(seed)
    if n == 0:
        return np.empty((0, 2))
    centers_x = rng.uniform(bounds.x_min, bounds.x_max, size=n_clusters)
    centers_y = rng.uniform(bounds.y_min, bounds.y_max, size=n_clusters)
    weights = 1.0 / np.arange(1, n_clusters + 1)
    weights /= weights.sum()
    assignment = rng.choice(n_clusters, size=n, p=weights)
    base = min(bounds.width, bounds.height) * spread_fraction
    spreads = base * rng.uniform(0.3, 3.0, size=n_clusters)
    points = np.column_stack(
        [
            centers_x[assignment] + rng.normal(0.0, 1.0, size=n) * spreads[assignment],
            centers_y[assignment] + rng.normal(0.0, 1.0, size=n) * spreads[assignment],
        ]
    )
    return _clip_to_world(points, bounds)


def generate_skewed(
    n: int,
    seed: int | np.random.Generator | None = 0,
    bounds: Rect = WORLD_BOUNDS,
    exponent: float = 3.0,
) -> np.ndarray:
    """Generate points with power-law density increasing toward one corner.

    A deliberately adversarial distribution: density varies by orders of
    magnitude across the space, stressing the estimators' handling of
    heterogeneous block sizes.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if exponent <= 0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    rng = _rng(seed)
    u = rng.uniform(0.0, 1.0, size=n) ** exponent
    v = rng.uniform(0.0, 1.0, size=n) ** exponent
    xs = bounds.x_min + u * bounds.width
    ys = bounds.y_min + v * bounds.height
    return np.column_stack([xs, ys])


def generate_osm_like(
    n: int,
    seed: int | np.random.Generator | None = 0,
    bounds: Rect = WORLD_BOUNDS,
    n_cities: int = 25,
    n_roads: int = 40,
    city_fraction: float = 0.55,
    road_fraction: float = 0.35,
    structure_seed: int | None = None,
) -> np.ndarray:
    """Generate an OpenStreetMap-like GPS point distribution.

    The mixture: ``city_fraction`` of points in *hierarchically*
    clustered cities (each city holds Zipf-weighted street-scale
    subclusters with very tight spreads, mimicking GPS traces along
    street networks — the sub-block-scale roughness of real GPS data is
    what stresses the uniform-within-block assumption of density-based
    estimation), ``road_fraction`` along narrow corridors connecting
    random city pairs, and the remainder as uniform background noise.

    Args:
        n: Total number of points.
        seed: Seed or generator for determinism.
        bounds: Universe rectangle.
        n_cities: Number of city clusters.
        n_roads: Number of road corridors.
        city_fraction: Fraction of points assigned to cities.
        road_fraction: Fraction of points assigned to roads.
        structure_seed: When given, the urban *structure* (city centers,
            subclusters, road network) is drawn from this separate seed
            while the points themselves follow ``seed``.  Two datasets
            sharing a ``structure_seed`` are co-distributed — like the
            paper's pair of OpenStreetMap indexes, or hotels versus
            restaurants over the same street network — which is the
            realistic setting for k-NN-Join workloads.

    Raises:
        ValueError: If fractions are negative or sum above 1.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if city_fraction < 0 or road_fraction < 0 or city_fraction + road_fraction > 1.0:
        raise ValueError("city/road fractions must be non-negative and sum to <= 1")
    if n_cities < 1 or n_roads < 1:
        raise ValueError("n_cities and n_roads must be >= 1")
    rng = _rng(seed)
    structure_rng = rng if structure_seed is None else _rng(structure_seed)
    if n == 0:
        return np.empty((0, 2))

    n_city = int(n * city_fraction)
    n_road = int(n * road_fraction)
    n_background = n - n_city - n_road
    side = min(bounds.width, bounds.height)

    # Cities: Zipf-weighted centers, each decomposed into street-scale
    # subclusters whose spreads span two orders of magnitude.
    centers = np.column_stack(
        [
            structure_rng.uniform(bounds.x_min, bounds.x_max, size=n_cities),
            structure_rng.uniform(bounds.y_min, bounds.y_max, size=n_cities),
        ]
    )
    city_weights = 1.0 / np.arange(1, n_cities + 1) ** 1.1
    city_weights /= city_weights.sum()
    city_spreads = side * 0.015 * structure_rng.uniform(0.5, 3.0, size=n_cities)

    sub_centers: list[np.ndarray] = []
    sub_sigmas: list[np.ndarray] = []
    sub_weights: list[np.ndarray] = []
    for city in range(n_cities):
        n_sub = int(structure_rng.integers(5, 30))
        offsets = structure_rng.normal(size=(n_sub, 2)) * city_spreads[city]
        sub_centers.append(centers[city] + offsets)
        sub_sigmas.append(side * structure_rng.uniform(5e-5, 2e-3, size=n_sub))
        w = 1.0 / np.arange(1, n_sub + 1)
        sub_weights.append(city_weights[city] * w / w.sum())
    all_centers = np.concatenate(sub_centers, axis=0)
    all_sigmas = np.concatenate(sub_sigmas)
    all_weights = np.concatenate(sub_weights)
    all_weights /= all_weights.sum()
    assignment = rng.choice(all_centers.shape[0], size=n_city, p=all_weights)
    city_points = (
        all_centers[assignment] + rng.normal(size=(n_city, 2)) * all_sigmas[assignment, None]
    )

    # Roads: corridors between random city pairs, denser near big cities.
    src = structure_rng.choice(n_cities, size=n_roads, p=city_weights)
    dst = structure_rng.choice(n_cities, size=n_roads, p=city_weights)
    road_assignment = rng.integers(0, n_roads, size=n_road)
    t = rng.uniform(0.0, 1.0, size=n_road)
    along = (
        centers[src[road_assignment]]
        + (centers[dst[road_assignment]] - centers[src[road_assignment]]) * t[:, None]
    )
    road_points = along + rng.normal(size=(n_road, 2)) * (side * 0.002)

    background = np.column_stack(
        [
            rng.uniform(bounds.x_min, bounds.x_max, size=n_background),
            rng.uniform(bounds.y_min, bounds.y_max, size=n_background),
        ]
    )

    points = np.concatenate([city_points, road_points, background], axis=0)
    rng.shuffle(points, axis=0)
    return _clip_to_world(points, bounds)


def scale_factor_points(
    scale: int,
    base_n: int = 50_000,
    seed: int = 7,
    kind: str = "osm",
    structure_seed: int | None = None,
) -> np.ndarray:
    """Materialize the dataset for one of the paper's scale factors.

    The paper inserts ``scale x 10M`` OSM points for ``scale`` in 1..10;
    the reproduction uses ``scale x base_n`` synthetic points.  Scaling
    is *cumulative and nested* like the paper's ("we insert portions of
    the dataset at multiple ratios"): the scale-2 dataset contains the
    scale-1 dataset as a prefix, which we achieve by always generating
    from the same seed and truncating.

    Args:
        scale: Scale factor in ``1..10``.
        base_n: Points per unit of scale.
        seed: Generator seed shared across scales.
        kind: ``"osm"``, ``"uniform"``, or ``"skewed"``.
        structure_seed: Only for ``kind="osm"``: share the urban
            structure across relations (see :func:`generate_osm_like`).
    """
    if not 1 <= scale <= 10:
        raise ValueError(f"scale must be in 1..10, got {scale}")
    if kind == "osm":
        full = generate_osm_like(base_n * 10, seed=seed, structure_seed=structure_seed)
    elif kind == "uniform":
        full = generate_uniform(base_n * 10, seed=seed)
    elif kind == "skewed":
        full = generate_skewed(base_n * 10, seed=seed)
    else:
        raise ValueError(
            f"unknown dataset kind {kind!r}; expected one of ['osm', 'skewed', 'uniform']"
        )
    return full[: base_n * scale]
