"""Point-set persistence (CSV round trip).

The benchmark harness regenerates datasets deterministically, but users
bringing their own extracts (e.g. a real OpenStreetMap sample) can load
them through :func:`load_points_csv`.  Malformed files are rejected
with a typed :class:`~repro.resilience.errors.InvalidQueryError` that
names the first offending line — user-supplied data is the engine's
least trusted input.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.index.base import validate_points
from repro.resilience.errors import InvalidQueryError


def save_points_csv(points, path: str | Path) -> None:
    """Write an ``(n, 2)`` point array as a two-column ``x,y`` CSV."""
    pts = validate_points(points)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savetxt(path, pts, delimiter=",", header="x,y", comments="")


def load_points_csv(path: str | Path) -> np.ndarray:
    """Load a two-column ``x,y`` CSV into an ``(n, 2)`` point array.

    The first line is treated as a header and skipped.

    Raises:
        FileNotFoundError: If ``path`` does not exist.
        InvalidQueryError: (a ``ValueError``) if any data line is not a
            pair of finite numbers; the message names the line.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such file: {path}")
    try:
        # Fast path: the vectorized parse handles well-formed files.
        data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
        return validate_points(data)
    except ValueError as exc:
        raise _diagnose_csv(path, exc) from exc


def _diagnose_csv(path: Path, cause: ValueError) -> InvalidQueryError:
    """Re-scan a rejected CSV line by line to name the first bad row."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        next(handle, None)  # the header line is never data
        for line_number, line in enumerate(handle, start=2):
            stripped = line.strip()
            if not stripped:
                continue  # np.loadtxt ignores blank lines; so do we
            fields = stripped.split(",")
            if len(fields) != 2:
                return InvalidQueryError(
                    f"{path}, line {line_number}: expected two "
                    f"comma-separated columns, got {len(fields)} in {stripped!r}"
                )
            try:
                x, y = float(fields[0]), float(fields[1])
            except ValueError:
                return InvalidQueryError(
                    f"{path}, line {line_number}: not a pair of numbers: "
                    f"{stripped!r}"
                )
            if not (math.isfinite(x) and math.isfinite(y)):
                return InvalidQueryError(
                    f"{path}, line {line_number}: coordinates must be "
                    f"finite, got {stripped!r}"
                )
    # The row scan found nothing; keep the original parser complaint.
    return InvalidQueryError(f"{path}: {cause}")
