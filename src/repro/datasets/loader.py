"""Point-set persistence (CSV round trip).

The benchmark harness regenerates datasets deterministically, but users
bringing their own extracts (e.g. a real OpenStreetMap sample) can load
them through :func:`load_points_csv`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.index.base import validate_points


def save_points_csv(points, path: str | Path) -> None:
    """Write an ``(n, 2)`` point array as a two-column ``x,y`` CSV."""
    pts = validate_points(points)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savetxt(path, pts, delimiter=",", header="x,y", comments="")


def load_points_csv(path: str | Path) -> np.ndarray:
    """Load a two-column ``x,y`` CSV into an ``(n, 2)`` point array.

    Raises:
        FileNotFoundError: If ``path`` does not exist.
        ValueError: If the file does not parse into two columns of
            finite floats.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    data = np.loadtxt(path, delimiter=",", skiprows=1, ndmin=2)
    return validate_points(data)
