"""k-NN-Select query workload generators.

The paper evaluates with "100,000 queries that are chosen at random"
(Section 5.1.1).  Location-based-service query focal points ("find the
k closest restaurants to *my location*") follow the population — i.e.
the data — distribution, so the reproduction's default workload samples
focal points at indexed data points; a uniform-in-space workload is
provided as an alternative stress test for sparse regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Point, Rect


@dataclass(frozen=True, slots=True)
class SelectQuery:
    """One k-NN-Select query: a focal point and a k value."""

    query: Point
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")


def random_k_values(
    n: int, max_k: int, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Draw ``n`` k values uniformly from ``[1, max_k]``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return rng.integers(1, max_k + 1, size=n)


def zipf_k_values(
    n: int,
    max_k: int,
    seed: int | np.random.Generator | None = 0,
    exponent: float = 1.5,
) -> np.ndarray:
    """Draw ``n`` k values from a truncated Zipf distribution.

    Real k-NN workloads are dominated by small k ("the 5 closest
    hotels") with a long tail of analytical queries; the reproduction's
    accuracy turned out to be sensitive to the k distribution (small k
    means small absolute costs and hence large relative errors), so the
    workload generators make the choice explicit.

    Args:
        n: Number of values.
        max_k: Truncation bound.
        seed: Seed or generator.
        exponent: Zipf exponent (> 1; larger = more small-k mass).

    Raises:
        ValueError: On invalid sizes or exponent.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, max_k + 1, dtype=float) ** exponent
    weights /= weights.sum()
    return rng.choice(np.arange(1, max_k + 1), size=n, p=weights)


def data_distributed_queries(
    points: np.ndarray,
    n: int,
    max_k: int,
    seed: int | np.random.Generator | None = 0,
) -> list[SelectQuery]:
    """Sample query focal points at indexed data points (the default).

    Args:
        points: ``(m, 2)`` array of the indexed points.
        n: Number of queries.
        max_k: Upper bound of the uniform k distribution.
        seed: Seed or generator for determinism.

    Raises:
        ValueError: If the point set is empty or sizes are invalid.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if points.shape[0] == 0:
        raise ValueError("cannot sample queries from an empty point set")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    picks = rng.integers(0, points.shape[0], size=n)
    ks = random_k_values(n, max_k, rng)
    return [
        SelectQuery(Point(float(points[i, 0]), float(points[i, 1])), int(k))
        for i, k in zip(picks, ks)
    ]


def uniform_queries(
    bounds: Rect,
    n: int,
    max_k: int,
    seed: int | np.random.Generator | None = 0,
) -> list[SelectQuery]:
    """Sample query focal points uniformly over ``bounds``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    xs = rng.uniform(bounds.x_min, bounds.x_max, size=n)
    ys = rng.uniform(bounds.y_min, bounds.y_max, size=n)
    ks = random_k_values(n, max_k, rng)
    return [
        SelectQuery(Point(float(x), float(y)), int(k)) for x, y, k in zip(xs, ys, ks)
    ]
