"""k-NN-Select query workload generators.

The paper evaluates with "100,000 queries that are chosen at random"
(Section 5.1.1).  Location-based-service query focal points ("find the
k closest restaurants to *my location*") follow the population — i.e.
the data — distribution, so the reproduction's default workload samples
focal points at indexed data points; a uniform-in-space workload is
provided as an alternative stress test for sparse regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.geometry import Point, Rect


@dataclass(frozen=True, slots=True)
class SelectQuery:
    """One k-NN-Select query: a focal point and a k value."""

    query: Point
    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")


class QueryBatch:
    """A k-NN-Select workload held as dense arrays, not ``Point`` objects.

    The serving path (``SpatialEngine.execute_batch``, the replay bench,
    the CLI ``--batch`` mode) consumes whole workloads at once; holding
    them as an ``(n, 2)`` coordinate array plus an ``(n,)`` k array keeps
    generation, persistence, and slicing vectorized, and defers ``Point``
    materialization to the moment a scalar consumer actually needs one
    (:meth:`point`, :meth:`__getitem__`, :meth:`iter_queries` — the lazy
    views).

    Args:
        points: ``(n, 2)`` focal coordinates (copied to float64).
        ks: ``(n,)`` neighbor counts (copied to int64).

    Raises:
        ValueError: On shape mismatch or any ``k < 1``.
    """

    __slots__ = ("points", "ks")

    def __init__(self, points: np.ndarray, ks: np.ndarray) -> None:
        pts = np.asarray(points, dtype=float).reshape(-1, 2)
        ks_arr = np.asarray(ks, dtype=np.int64).reshape(-1)
        if pts.shape[0] != ks_arr.shape[0]:
            raise ValueError(
                f"got {pts.shape[0]} points but {ks_arr.shape[0]} k values"
            )
        if ks_arr.size and int(ks_arr.min()) < 1:
            bad = int(ks_arr[int(np.argmax(ks_arr < 1))])
            raise ValueError(f"k must be >= 1, got {bad}")
        self.points = pts
        self.ks = ks_arr

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @classmethod
    def data_distributed(
        cls,
        points: np.ndarray,
        n: int,
        max_k: int,
        seed: int | np.random.Generator | None = 0,
    ) -> "QueryBatch":
        """Array-native :func:`data_distributed_queries`."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        if points.shape[0] == 0:
            raise ValueError("cannot sample queries from an empty point set")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        picks = rng.integers(0, points.shape[0], size=n)
        ks = random_k_values(n, max_k, rng)
        return cls(points[picks], ks)

    @classmethod
    def uniform(
        cls,
        bounds: Rect,
        n: int,
        max_k: int,
        seed: int | np.random.Generator | None = 0,
    ) -> "QueryBatch":
        """Array-native :func:`uniform_queries`."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
        xs = rng.uniform(bounds.x_min, bounds.x_max, size=n)
        ys = rng.uniform(bounds.y_min, bounds.y_max, size=n)
        ks = random_k_values(n, max_k, rng)
        return cls(np.column_stack([xs, ys]), ks)

    # ------------------------------------------------------------------
    # Persistence (the CLI --batch file format)
    # ------------------------------------------------------------------
    @classmethod
    def from_csv(cls, path: str | Path) -> "QueryBatch":
        """Load a workload from an ``x,y,k`` CSV (header optional).

        Raises:
            ValueError: On rows without exactly three columns or
                non-numeric values.
        """
        raw = np.genfromtxt(path, delimiter=",", skip_header=_csv_has_header(path))
        if raw.size == 0:
            return cls(np.empty((0, 2)), np.empty(0, dtype=np.int64))
        raw = raw.reshape(-1, raw.shape[-1] if raw.ndim > 1 else raw.shape[0])
        if raw.shape[1] != 3:
            raise ValueError(
                f"query CSV must have x,y,k columns, got {raw.shape[1]} columns"
            )
        if not np.all(np.isfinite(raw)):
            raise ValueError(f"query CSV {path} contains non-numeric values")
        return cls(raw[:, :2], raw[:, 2].astype(np.int64))

    def to_csv(self, path: str | Path) -> None:
        """Write the workload as an ``x,y,k`` CSV with a header row."""
        rows = np.column_stack([self.points, self.ks.astype(float)])
        np.savetxt(path, rows, delimiter=",", header="x,y,k", comments="", fmt="%.17g")

    # ------------------------------------------------------------------
    # Lazy per-query views
    # ------------------------------------------------------------------
    def point(self, i: int) -> Point:
        """Materialize the ``i``-th focal point (on demand, not stored)."""
        return Point(float(self.points[i, 0]), float(self.points[i, 1]))

    def __getitem__(self, i: int) -> SelectQuery:
        return SelectQuery(self.point(i), int(self.ks[i]))

    def __len__(self) -> int:
        return int(self.ks.shape[0])

    def iter_queries(self) -> Iterator[SelectQuery]:
        """Yield :class:`SelectQuery` views one at a time."""
        for i in range(len(self)):
            yield self[i]

    def as_knn_queries(self, table: str) -> list:
        """Materialize engine queries against ``table``.

        Returns ``KnnSelectQuery`` objects (imported lazily — the
        workload layer stays importable without the engine).
        """
        from repro.engine.queries import KnnSelectQuery

        return [
            KnnSelectQuery(table, self.point(i), k=int(self.ks[i]))
            for i in range(len(self))
        ]

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        if len(self) == 0:
            return "0 queries"
        return (
            f"{len(self)} queries, k in [{int(self.ks.min())}, "
            f"{int(self.ks.max())}]"
        )


def _csv_has_header(path: str | Path) -> int:
    """1 when the file starts with a non-numeric header row, else 0."""
    with open(path) as handle:
        first = handle.readline()
    token = first.split(",")[0].strip()
    try:
        float(token)
    except ValueError:
        return 1
    return 0


def random_k_values(
    n: int, max_k: int, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Draw ``n`` k values uniformly from ``[1, max_k]``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    return rng.integers(1, max_k + 1, size=n)


def zipf_k_values(
    n: int,
    max_k: int,
    seed: int | np.random.Generator | None = 0,
    exponent: float = 1.5,
) -> np.ndarray:
    """Draw ``n`` k values from a truncated Zipf distribution.

    Real k-NN workloads are dominated by small k ("the 5 closest
    hotels") with a long tail of analytical queries; the reproduction's
    accuracy turned out to be sensitive to the k distribution (small k
    means small absolute costs and hence large relative errors), so the
    workload generators make the choice explicit.

    Args:
        n: Number of values.
        max_k: Truncation bound.
        seed: Seed or generator.
        exponent: Zipf exponent (> 1; larger = more small-k mass).

    Raises:
        ValueError: On invalid sizes or exponent.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, max_k + 1, dtype=float) ** exponent
    weights /= weights.sum()
    return rng.choice(np.arange(1, max_k + 1), size=n, p=weights)


def data_distributed_queries(
    points: np.ndarray,
    n: int,
    max_k: int,
    seed: int | np.random.Generator | None = 0,
) -> list[SelectQuery]:
    """Sample query focal points at indexed data points (the default).

    Args:
        points: ``(m, 2)`` array of the indexed points.
        n: Number of queries.
        max_k: Upper bound of the uniform k distribution.
        seed: Seed or generator for determinism.

    Raises:
        ValueError: If the point set is empty or sizes are invalid.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if points.shape[0] == 0:
        raise ValueError("cannot sample queries from an empty point set")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    picks = rng.integers(0, points.shape[0], size=n)
    ks = random_k_values(n, max_k, rng)
    return [
        SelectQuery(Point(float(points[i, 0]), float(points[i, 1])), int(k))
        for i, k in zip(picks, ks)
    ]


def uniform_queries(
    bounds: Rect,
    n: int,
    max_k: int,
    seed: int | np.random.Generator | None = 0,
) -> list[SelectQuery]:
    """Sample query focal points uniformly over ``bounds``."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    xs = rng.uniform(bounds.x_min, bounds.x_max, size=n)
    ys = rng.uniform(bounds.y_min, bounds.y_max, size=n)
    ks = random_k_values(n, max_k, rng)
    return [
        SelectQuery(Point(float(x), float(y)), int(k)) for x, y, k in zip(xs, ys, ks)
    ]
