"""Query workload generation, churn replay, and evaluation metrics."""

from repro.workloads.churn import (
    ChurnPhase,
    ChurnReport,
    churn_phases,
    run_churn,
)
from repro.workloads.queries import (
    QueryBatch,
    SelectQuery,
    data_distributed_queries,
    uniform_queries,
    random_k_values,
    zipf_k_values,
)
from repro.workloads.serving import ServingReport, serve_workload
from repro.workloads.metrics import (
    error_ratio,
    mean_error_ratio,
    summarize_errors,
    ErrorSummary,
    TimingStats,
    time_callable,
)

__all__ = [
    "ChurnPhase",
    "ChurnReport",
    "churn_phases",
    "run_churn",
    "QueryBatch",
    "SelectQuery",
    "ServingReport",
    "serve_workload",
    "data_distributed_queries",
    "uniform_queries",
    "random_k_values",
    "zipf_k_values",
    "error_ratio",
    "mean_error_ratio",
    "summarize_errors",
    "ErrorSummary",
    "TimingStats",
    "time_callable",
]
