"""Query workload generation and evaluation metrics."""

from repro.workloads.queries import (
    QueryBatch,
    SelectQuery,
    data_distributed_queries,
    uniform_queries,
    random_k_values,
    zipf_k_values,
)
from repro.workloads.serving import ServingReport, serve_workload
from repro.workloads.metrics import (
    error_ratio,
    mean_error_ratio,
    summarize_errors,
    ErrorSummary,
    TimingStats,
    time_callable,
)

__all__ = [
    "QueryBatch",
    "SelectQuery",
    "ServingReport",
    "serve_workload",
    "data_distributed_queries",
    "uniform_queries",
    "random_k_values",
    "zipf_k_values",
    "error_ratio",
    "mean_error_ratio",
    "summarize_errors",
    "ErrorSummary",
    "TimingStats",
    "time_callable",
]
