"""Query workload generation and evaluation metrics."""

from repro.workloads.queries import (
    SelectQuery,
    data_distributed_queries,
    uniform_queries,
    random_k_values,
    zipf_k_values,
)
from repro.workloads.metrics import (
    error_ratio,
    mean_error_ratio,
    summarize_errors,
    ErrorSummary,
    TimingStats,
    time_callable,
)

__all__ = [
    "SelectQuery",
    "data_distributed_queries",
    "uniform_queries",
    "random_k_values",
    "zipf_k_values",
    "error_ratio",
    "mean_error_ratio",
    "summarize_errors",
    "ErrorSummary",
    "TimingStats",
    "time_callable",
]
