"""Evaluation metrics: error ratios and timing statistics.

The paper's accuracy metric is the *error ratio*: for each query the
estimated cost is compared with the actual cost and the ratio averaged
over the workload (Section 5.1.1).  We use the standard definition
``|estimated - actual| / actual``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


def error_ratio(estimated: float, actual: float) -> float:
    """Relative estimation error ``|estimated - actual| / actual``.

    A zero actual cost (possible only for empty indexes) pairs with a
    zero estimate to give zero error; a nonzero estimate against a zero
    actual is reported as an infinite ratio rather than hidden.
    """
    if actual == 0:
        return 0.0 if estimated == 0 else float("inf")
    return abs(estimated - actual) / abs(actual)


def mean_error_ratio(estimates: Sequence[float], actuals: Sequence[float]) -> float:
    """Average error ratio over a workload."""
    if len(estimates) != len(actuals):
        raise ValueError(
            f"length mismatch: {len(estimates)} estimates vs {len(actuals)} actuals"
        )
    if not estimates:
        raise ValueError("cannot average an empty workload")
    return float(np.mean([error_ratio(e, a) for e, a in zip(estimates, actuals)]))


@dataclass(frozen=True, slots=True)
class ErrorSummary:
    """Distribution summary of per-query error ratios."""

    mean: float
    median: float
    p90: float
    count: int

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.3f} median={self.median:.3f} "
            f"p90={self.p90:.3f} (n={self.count})"
        )


def summarize_errors(
    estimates: Sequence[float], actuals: Sequence[float]
) -> ErrorSummary:
    """Summarize the error-ratio distribution of a workload."""
    if len(estimates) != len(actuals):
        raise ValueError(
            f"length mismatch: {len(estimates)} estimates vs {len(actuals)} actuals"
        )
    if not estimates:
        raise ValueError("cannot summarize an empty workload")
    ratios = np.array([error_ratio(e, a) for e, a in zip(estimates, actuals)])
    return ErrorSummary(
        mean=float(ratios.mean()),
        median=float(np.median(ratios)),
        p90=float(np.percentile(ratios, 90)),
        count=int(ratios.shape[0]),
    )


@dataclass(frozen=True, slots=True)
class TimingStats:
    """Per-call timing statistics of a repeatedly-invoked operation."""

    mean_seconds: float
    min_seconds: float
    total_seconds: float
    calls: int

    def __str__(self) -> str:
        return f"mean={self.mean_seconds:.2e}s min={self.min_seconds:.2e}s calls={self.calls}"


def time_callable(
    fn: Callable[[], object], repeats: int = 100, warmup: int = 3
) -> TimingStats:
    """Measure the per-call wall-clock time of ``fn``.

    Args:
        fn: Zero-argument callable to measure.
        repeats: Number of measured invocations.
        warmup: Unmeasured invocations run first (JIT-free Python still
            benefits from warm caches).

    Raises:
        ValueError: If ``repeats < 1``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for __ in range(warmup):
        fn()
    durations = []
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - start)
    durations_arr = np.array(durations)
    return TimingStats(
        mean_seconds=float(durations_arr.mean()),
        min_seconds=float(durations_arr.min()),
        total_seconds=float(durations_arr.sum()),
        calls=repeats,
    )
