"""Sustained-churn workloads: interleaved updates and k-NN queries.

The maintenance vertical needs a workload that looks like live traffic:
batches of inserts concentrated around a *moving hotspot* (plus a
uniform remainder), deletes of existing points, and k-NN-Select cost
queries between the update batches.  :func:`churn_phases` generates such
a workload deterministically from a seed; :func:`run_churn` replays it
against a :class:`~repro.index.mutable_quadtree.MutableQuadtree` and a
maintained Staircase estimator, timing catalog maintenance separately
from query serving and accumulating the rebuilt/reused split of every
maintenance pass.

``benchmarks/bench_churn.py`` runs the same workload twice — once with
incremental maintenance, once forcing a full rebuild each phase — and
asserts the incremental run rebuilds strictly fewer leaf catalogs while
producing identical estimates (the bit-for-bit equivalence the
maintenance layer guarantees).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.geometry import Point, Rect


@dataclass(frozen=True)
class ChurnPhase:
    """One round of a churn workload.

    Attributes:
        inserts: ``(n_i, 2)`` points to insert at the start of the phase.
        deletes: ``(n_d, 2)`` points to delete (all live at phase start).
        queries: ``(n_q, 2)`` k-NN-Select focal points to estimate after
            the updates are applied.
        ks: ``(n_q,)`` per-query k values.
    """

    inserts: np.ndarray
    deletes: np.ndarray
    queries: np.ndarray
    ks: np.ndarray

    @property
    def n_mutations(self) -> int:
        """Updates this phase applies (inserts + deletes)."""
        return int(self.inserts.shape[0] + self.deletes.shape[0])


def churn_phases(
    initial_points: np.ndarray,
    bounds: Rect,
    *,
    phases: int,
    inserts_per_phase: int,
    deletes_per_phase: int,
    queries_per_phase: int,
    max_k: int,
    hotspot_fraction: float = 0.8,
    seed: int = 0,
) -> list[ChurnPhase]:
    """Generate a deterministic moving-hotspot churn workload.

    Each phase inserts ``hotspot_fraction`` of its points as a Gaussian
    cloud around a hotspot that walks across the space (phase ``i``'s
    center rotates around the middle of ``bounds``) and the remainder
    uniformly; deletes draw uniformly from the points live at that
    moment; queries are data-distributed (sampled near live points, as
    real focal points are) with uniform ``k`` in ``[1, max_k]``.

    Args:
        initial_points: ``(n, 2)`` points already loaded in the index.
        bounds: The indexed universe (inserts/queries are clipped into
            it).
        phases: Number of update/query rounds.
        inserts_per_phase: Points inserted per round.
        deletes_per_phase: Points deleted per round (capped at the live
            population so the workload never deletes a missing point).
        queries_per_phase: Cost queries per round.
        max_k: Upper bound of the per-query k values.
        hotspot_fraction: Fraction of inserts drawn from the hotspot
            cloud (the rest are uniform).
        seed: RNG seed — the workload is fully determined by its
            arguments.

    Raises:
        ValueError: On non-positive counts or an invalid fraction.
    """
    if phases < 1:
        raise ValueError(f"phases must be >= 1, got {phases}")
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    if not 0.0 <= hotspot_fraction <= 1.0:
        raise ValueError(
            f"hotspot_fraction must be in [0, 1], got {hotspot_fraction}"
        )
    rng = np.random.default_rng(seed)
    live = [
        (float(x), float(y))
        for x, y in np.asarray(initial_points, dtype=float).reshape(-1, 2)
    ]
    center_x = (bounds.x_min + bounds.x_max) / 2.0
    center_y = (bounds.y_min + bounds.y_max) / 2.0
    orbit_x = bounds.width * 0.3
    orbit_y = bounds.height * 0.3
    sigma = min(bounds.width, bounds.height) * 0.04
    out: list[ChurnPhase] = []
    for phase in range(phases):
        angle = 2.0 * np.pi * phase / phases
        hot_x = center_x + orbit_x * np.cos(angle)
        hot_y = center_y + orbit_y * np.sin(angle)
        n_hot = int(round(inserts_per_phase * hotspot_fraction))
        hot = np.column_stack(
            [
                rng.normal(hot_x, sigma, n_hot),
                rng.normal(hot_y, sigma, n_hot),
            ]
        )
        uniform = np.column_stack(
            [
                rng.uniform(bounds.x_min, bounds.x_max, inserts_per_phase - n_hot),
                rng.uniform(bounds.y_min, bounds.y_max, inserts_per_phase - n_hot),
            ]
        )
        inserts = np.concatenate([hot, uniform], axis=0)
        inserts[:, 0] = np.clip(inserts[:, 0], bounds.x_min, bounds.x_max)
        inserts[:, 1] = np.clip(inserts[:, 1], bounds.y_min, bounds.y_max)
        live.extend((float(x), float(y)) for x, y in inserts)

        n_del = min(deletes_per_phase, len(live))
        n_hot_del = int(round(n_del * hotspot_fraction))
        live_arr = np.array(live, dtype=float)
        # Hotspot-local deletes: churn removes from where it writes.
        by_distance = np.argsort(
            np.hypot(live_arr[:, 0] - hot_x, live_arr[:, 1] - hot_y),
            kind="stable",
        )
        hot_victims = by_distance[:n_hot_del]
        remaining = by_distance[n_hot_del:]
        cold_victims = rng.choice(
            remaining, size=n_del - n_hot_del, replace=False
        )
        victims = np.concatenate([hot_victims, cold_victims])
        deletes = live_arr[victims].reshape(-1, 2)
        for i in sorted(victims.tolist(), reverse=True):
            live.pop(i)

        anchors = rng.choice(len(live), size=queries_per_phase, replace=True)
        jitter = rng.normal(0.0, sigma, size=(queries_per_phase, 2))
        queries = np.array([live[i] for i in anchors], dtype=float) + jitter
        queries[:, 0] = np.clip(queries[:, 0], bounds.x_min, bounds.x_max)
        queries[:, 1] = np.clip(queries[:, 1], bounds.y_min, bounds.y_max)
        ks = rng.integers(1, max_k + 1, size=queries_per_phase)
        out.append(
            ChurnPhase(
                inserts=inserts,
                deletes=deletes,
                queries=queries,
                ks=ks.astype(np.int64),
            )
        )
    return out


@dataclass(frozen=True)
class ChurnReport:
    """Outcome of replaying a churn workload.

    Attributes:
        mode: ``"incremental"`` or ``"full"`` maintenance.
        phases: Rounds replayed.
        n_queries: Total cost queries served.
        n_mutations: Total updates applied.
        catalogs_total: Leaf catalogs maintained, summed over all
            maintenance passes (the full-rebuild work ceiling).
        catalogs_rebuilt: Leaf catalogs actually rebuilt across passes.
        estimates: ``(n_queries,)`` estimated costs in workload order.
        maintain_seconds: Wall-clock spent in catalog maintenance.
        query_seconds: Wall-clock spent serving estimates.
        generation: The index's data generation after the replay.
    """

    mode: str
    phases: int
    n_queries: int
    n_mutations: int
    catalogs_total: int
    catalogs_rebuilt: int
    estimates: np.ndarray
    maintain_seconds: float
    query_seconds: float
    generation: int

    @property
    def rebuild_ratio(self) -> float:
        """Fraction of maintainable catalogs that were rebuilt."""
        if self.catalogs_total == 0:
            return 0.0
        return self.catalogs_rebuilt / self.catalogs_total

    def to_dict(self) -> dict:
        """JSON-ready summary (for bench ``extra_info`` and the CLI)."""
        return {
            "mode": self.mode,
            "phases": self.phases,
            "n_queries": self.n_queries,
            "n_mutations": self.n_mutations,
            "catalogs_total": self.catalogs_total,
            "catalogs_rebuilt": self.catalogs_rebuilt,
            "rebuild_ratio": self.rebuild_ratio,
            "maintain_seconds": self.maintain_seconds,
            "query_seconds": self.query_seconds,
            "generation": self.generation,
        }

    def describe(self) -> str:
        """One-line summary for logs and the CLI."""
        return (
            f"{self.mode}: {self.catalogs_rebuilt}/{self.catalogs_total} "
            f"catalogs rebuilt ({self.rebuild_ratio:.1%}) over "
            f"{self.phases} phases, {self.n_mutations} mutations, "
            f"{self.n_queries} queries "
            f"(maintain {self.maintain_seconds:.3f} s, "
            f"serve {self.query_seconds:.3f} s)"
        )


def run_churn(tree, estimator, phases: list[ChurnPhase], *, mode: str = "incremental") -> ChurnReport:
    """Replay a churn workload against a maintained estimator.

    Each phase applies its updates to ``tree``, runs one eager
    maintenance pass on ``estimator``
    (:meth:`~repro.estimators.maintenance.MaintainedStaircaseEstimator.refresh_incremental`,
    with ``full=True`` when ``mode="full"`` — the rebuild-everything
    baseline), then serves the phase's cost queries.

    Args:
        tree: The :class:`~repro.index.mutable_quadtree.MutableQuadtree`
            holding the data.
        estimator: A maintained estimator over ``tree`` exposing
            ``refresh_incremental`` and ``estimate``.
        phases: The workload (see :func:`churn_phases`).
        mode: ``"incremental"`` or ``"full"``.

    Raises:
        ValueError: On an unknown mode.
    """
    if mode not in ("incremental", "full"):
        raise ValueError(f"mode must be 'incremental' or 'full', got {mode!r}")
    estimates: list[float] = []
    catalogs_total = 0
    catalogs_rebuilt = 0
    n_mutations = 0
    maintain_seconds = 0.0
    query_seconds = 0.0
    for phase in phases:
        for x, y in phase.inserts:
            tree.insert(float(x), float(y))
        for x, y in phase.deletes:
            tree.delete(float(x), float(y))
        n_mutations += phase.n_mutations
        start = time.perf_counter()
        report = estimator.refresh_incremental(full=(mode == "full"))
        maintain_seconds += time.perf_counter() - start
        catalogs_total += report.catalogs_total
        catalogs_rebuilt += report.catalogs_rebuilt
        start = time.perf_counter()
        for (x, y), k in zip(phase.queries, phase.ks):
            estimates.append(estimator.estimate(Point(float(x), float(y)), int(k)))
        query_seconds += time.perf_counter() - start
    return ChurnReport(
        mode=mode,
        phases=len(phases),
        n_queries=len(estimates),
        n_mutations=n_mutations,
        catalogs_total=catalogs_total,
        catalogs_rebuilt=catalogs_rebuilt,
        estimates=np.asarray(estimates, dtype=float),
        maintain_seconds=maintain_seconds,
        query_seconds=query_seconds,
        generation=int(getattr(tree, "data_generation", 0)),
    )
