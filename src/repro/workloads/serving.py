"""The batched serving driver: replay a workload, measure throughput.

One function, :func:`serve_workload`, runs a :class:`~repro.workloads.queries.QueryBatch`
against a :class:`~repro.engine.SpatialEngine` in one of three serving
modes — ``"batch"`` (one :meth:`~repro.engine.SpatialEngine.execute_batch`
call), ``"scalar"`` (a per-query :meth:`~repro.engine.SpatialEngine.execute`
loop), or ``"sharded"`` (the supervised multi-process tier of
:mod:`repro.serving`) — and returns a :class:`ServingReport` with
wall-clock throughput, latency percentiles where the mode records them,
and the estimate cache's hit/miss movement.  The CLI ``--batch`` mode
and ``benchmarks/bench_serving_throughput.py`` are thin wrappers over
it, so both measure exactly the same code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.workloads.queries import QueryBatch


@dataclass(frozen=True)
class ServingReport:
    """Outcome of replaying one workload through the engine.

    Attributes:
        mode: ``"batch"``, ``"scalar"``, or ``"sharded"``.
        n_queries: Workload size.
        seconds: Wall-clock time of the replay (planning + execution).
        results: Per-query :class:`~repro.engine.ExecutionResult`, in
            workload order.
        explanations: Per-query :class:`~repro.engine.PlanExplanation`.
        cache_hits: Estimate-cache hits this replay added (``None`` when
            the engine's cache is disabled).
        cache_misses: Estimate-cache misses this replay added.
        latencies_us: ``(n,)`` per-query latencies in microseconds, when
            the serving mode records them (``"scalar"`` measures each
            query; ``"sharded"`` amortizes per chunk; ``"batch"`` plans
            the whole workload at once, so per-query figures would be
            fiction and stay ``None``).
    """

    mode: str
    n_queries: int
    seconds: float
    results: list
    explanations: list
    cache_hits: int | None
    cache_misses: int | None
    latencies_us: np.ndarray | None = None

    @property
    def queries_per_second(self) -> float:
        """Serving throughput (0.0 for an empty or instantaneous run)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.n_queries / self.seconds

    @property
    def mean_latency_us(self) -> float:
        """Mean per-query latency in microseconds."""
        if self.n_queries == 0:
            return 0.0
        return self.seconds / self.n_queries * 1e6

    def _latency_percentile(self, q: float) -> float | None:
        if self.latencies_us is None or self.latencies_us.size == 0:
            return None
        return float(np.percentile(self.latencies_us, q))

    @property
    def p50_latency_us(self) -> float | None:
        """Median per-query latency (``None`` when not recorded)."""
        return self._latency_percentile(50.0)

    @property
    def p95_latency_us(self) -> float | None:
        """95th-percentile per-query latency (``None`` when not recorded)."""
        return self._latency_percentile(95.0)

    @property
    def p99_latency_us(self) -> float | None:
        """99th-percentile per-query latency — the serving-tier SLO
        figure (``None`` when not recorded)."""
        return self._latency_percentile(99.0)

    @property
    def cache_hit_rate(self) -> float | None:
        """This replay's hit fraction (``None`` with the cache disabled)."""
        if self.cache_hits is None or self.cache_misses is None:
            return None
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def describe(self) -> str:
        """Multi-line summary for the CLI."""
        lines = [
            f"mode:        {self.mode}",
            f"queries:     {self.n_queries}",
            f"elapsed:     {self.seconds:.3f} s",
            f"throughput:  {self.queries_per_second:,.0f} queries/s",
            f"latency:     {self.mean_latency_us:.1f} us/query (mean)",
        ]
        if self.p50_latency_us is not None:
            lines.append(
                "percentiles: "
                f"p50 {self.p50_latency_us:.1f} / "
                f"p95 {self.p95_latency_us:.1f} / "
                f"p99 {self.p99_latency_us:.1f} us/query"
            )
        rate = self.cache_hit_rate
        if rate is not None:
            lines.append(
                f"cache:       {self.cache_hits} hits / "
                f"{self.cache_misses} misses (hit rate {rate:.1%})"
            )
        return "\n".join(lines)


def serve_workload(
    engine,
    table: str,
    batch: QueryBatch,
    mode: str = "batch",
    *,
    shards: int = 4,
    shard_mode: str = "replica",
    workers: int = 1,
    deadline_ms: float | None = None,
    tier_options: dict | None = None,
) -> ServingReport:
    """Replay a workload against one table and time it.

    Args:
        engine: A :class:`~repro.engine.SpatialEngine` with ``table``
            registered.
        table: Target relation name.
        batch: The workload.
        mode: ``"batch"`` (vectorized ``execute_batch``), ``"scalar"``
            (a per-query ``execute`` loop — the baseline the bench
            compares against), or ``"sharded"`` (the supervised
            sharded tier of :mod:`repro.serving` — one-shot: workers
            are spawned and torn down inside the call).
        shards: Shard count for ``"sharded"`` mode.
        shard_mode: ``"replica"`` (each worker holds the full dataset)
            or ``"data"`` (each worker holds one block-aligned slice
            and the coordinator runs the streaming k-NN merge).
        workers: Worker processes per shard for ``"sharded"`` mode.
        deadline_ms: Per-batch deadline for ``"sharded"`` mode
            (``None`` = unbounded).
        tier_options: Extra :class:`~repro.serving.ShardedServingTier`
            keyword arguments for ``"sharded"`` mode (fault plans,
            supervision policy, admission, ``strict``, ...).

    Raises:
        ValueError: On an unknown mode.
    """
    if mode not in ("batch", "scalar", "sharded"):
        raise ValueError(
            f"mode must be 'batch', 'scalar' or 'sharded', got {mode!r}"
        )
    if mode == "sharded":
        # Imported lazily: repro.serving sits above the workloads layer.
        from repro.serving import serve_sharded

        return serve_sharded(
            engine.stats.table(table),
            batch,
            n_shards=shards,
            shard_mode=shard_mode,
            workers_per_shard=workers,
            deadline_ms=deadline_ms,
            **(tier_options or {}),
        )
    queries = batch.as_knn_queries(table)
    cache = getattr(engine.stats, "estimate_cache", None)
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    latencies_us = None
    start = time.perf_counter()
    if mode == "batch":
        pairs = engine.execute_batch(queries)
    else:
        pairs = []
        latencies_us = np.empty(len(queries), dtype=float)
        for i, query in enumerate(queries):
            query_start = time.perf_counter()
            pairs.append(engine.execute(query))
            latencies_us[i] = (time.perf_counter() - query_start) * 1e6
    seconds = time.perf_counter() - start
    return ServingReport(
        mode=mode,
        n_queries=len(queries),
        seconds=seconds,
        results=[result for result, __ in pairs],
        explanations=[explanation for __, explanation in pairs],
        cache_hits=cache.hits - hits_before if cache is not None else None,
        cache_misses=cache.misses - misses_before if cache is not None else None,
        latencies_us=latencies_us,
    )
