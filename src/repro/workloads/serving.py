"""The batched serving driver: replay a workload, measure throughput.

One function, :func:`serve_workload`, runs a :class:`~repro.workloads.queries.QueryBatch`
against a :class:`~repro.engine.SpatialEngine` in either serving mode —
``"batch"`` (one :meth:`~repro.engine.SpatialEngine.execute_batch` call)
or ``"scalar"`` (a per-query :meth:`~repro.engine.SpatialEngine.execute`
loop) — and returns a :class:`ServingReport` with wall-clock throughput
and the estimate cache's hit/miss movement.  The CLI ``--batch`` mode
and ``benchmarks/bench_serving_throughput.py`` are thin wrappers over
it, so both measure exactly the same code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.workloads.queries import QueryBatch


@dataclass(frozen=True)
class ServingReport:
    """Outcome of replaying one workload through the engine.

    Attributes:
        mode: ``"batch"`` or ``"scalar"``.
        n_queries: Workload size.
        seconds: Wall-clock time of the replay (planning + execution).
        results: Per-query :class:`~repro.engine.ExecutionResult`, in
            workload order.
        explanations: Per-query :class:`~repro.engine.PlanExplanation`.
        cache_hits: Estimate-cache hits this replay added (``None`` when
            the engine's cache is disabled).
        cache_misses: Estimate-cache misses this replay added.
    """

    mode: str
    n_queries: int
    seconds: float
    results: list
    explanations: list
    cache_hits: int | None
    cache_misses: int | None

    @property
    def queries_per_second(self) -> float:
        """Serving throughput (0.0 for an empty or instantaneous run)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.n_queries / self.seconds

    @property
    def mean_latency_us(self) -> float:
        """Mean per-query latency in microseconds."""
        if self.n_queries == 0:
            return 0.0
        return self.seconds / self.n_queries * 1e6

    @property
    def cache_hit_rate(self) -> float | None:
        """This replay's hit fraction (``None`` with the cache disabled)."""
        if self.cache_hits is None or self.cache_misses is None:
            return None
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def describe(self) -> str:
        """Multi-line summary for the CLI."""
        lines = [
            f"mode:        {self.mode}",
            f"queries:     {self.n_queries}",
            f"elapsed:     {self.seconds:.3f} s",
            f"throughput:  {self.queries_per_second:,.0f} queries/s",
            f"latency:     {self.mean_latency_us:.1f} us/query (mean)",
        ]
        rate = self.cache_hit_rate
        if rate is not None:
            lines.append(
                f"cache:       {self.cache_hits} hits / "
                f"{self.cache_misses} misses (hit rate {rate:.1%})"
            )
        return "\n".join(lines)


def serve_workload(
    engine, table: str, batch: QueryBatch, mode: str = "batch"
) -> ServingReport:
    """Replay a workload against one table and time it.

    Args:
        engine: A :class:`~repro.engine.SpatialEngine` with ``table``
            registered.
        table: Target relation name.
        batch: The workload.
        mode: ``"batch"`` (vectorized ``execute_batch``) or ``"scalar"``
            (a per-query ``execute`` loop — the baseline the bench
            compares against).

    Raises:
        ValueError: On an unknown mode.
    """
    if mode not in ("batch", "scalar"):
        raise ValueError(f"mode must be 'batch' or 'scalar', got {mode!r}")
    queries = batch.as_knn_queries(table)
    cache = getattr(engine.stats, "estimate_cache", None)
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    start = time.perf_counter()
    if mode == "batch":
        pairs = engine.execute_batch(queries)
    else:
        pairs = [engine.execute(query) for query in queries]
    seconds = time.perf_counter() - start
    return ServingReport(
        mode=mode,
        n_queries=len(queries),
        seconds=seconds,
        results=[result for result, __ in pairs],
        explanations=[explanation for __, explanation in pairs],
        cache_hits=cache.hits - hits_before if cache is not None else None,
        cache_misses=cache.misses - misses_before if cache is not None else None,
    )
