"""Depth-first branch-and-bound k-NN (Roussopoulos et al.).

The comparator algorithm of Section 2: visit index nodes depth-first in
MINDIST order from the query point, maintain the k best distances seen,
and prune any subtree whose MINDIST exceeds the current k-th best
distance.  The paper's Figure 1 walk-through shows it scanning one block
more than distance browsing (3 vs 2); the test suite reproduces that
relationship on random workloads: the depth-first cost is never below
the distance-browsing cost.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.geometry import Point, mindist_point_rect
from repro.index.base import IndexNode, SpatialIndex


def depth_first_knn(index: SpatialIndex, query: Point, k: int) -> tuple[np.ndarray, int]:
    """Run a k-NN-Select via depth-first branch-and-bound.

    Args:
        index: The data index.
        query: The query focal point.
        k: Number of neighbors to retrieve.

    Returns:
        ``(neighbors, cost)`` like :func:`repro.knn.knn_select`.

    Raises:
        ValueError: If ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    # Max-heap (negated distances) of the best k candidate points.
    best: list[tuple[float, float, float]] = []
    scanned = 0

    def kth_best() -> float:
        return -best[0][0] if len(best) == k else float("inf")

    def visit(node: IndexNode) -> None:
        nonlocal scanned
        if node.is_leaf:
            block = node.block
            if block is None:
                return
            scanned += 1
            dists = block.distances_from(query)
            for dist, (x, y) in zip(dists, block.points):
                if len(best) < k:
                    heapq.heappush(best, (-float(dist), float(x), float(y)))
                elif dist < kth_best():
                    heapq.heapreplace(best, (-float(dist), float(x), float(y)))
            return
        children = sorted(
            node.children, key=lambda child: mindist_point_rect(query, child.rect)
        )
        for child in children:
            if mindist_point_rect(query, child.rect) < kth_best():
                visit(child)

    visit(index.root)
    ordered = sorted(best, key=lambda entry: -entry[0])
    neighbors = np.array([(x, y) for __, x, y in ordered], dtype=float).reshape(-1, 2)
    return neighbors, scanned
