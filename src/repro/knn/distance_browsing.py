"""Distance browsing (Hjaltason & Samet) and its exact cost.

Distance browsing retrieves nearest neighbors incrementally through two
priority queues: a *blocks-queue* of index nodes ordered by MINDIST from
the query point, and a *tuples-queue* of already-scanned points ordered
by their distance.  A point is returned only when its distance is
strictly below the MINDIST at the top of the blocks-queue — the strict
comparison matches Procedure 1 of the paper, so catalogs and ground
truth agree exactly at catalog anchor points.

The paper models the cost of this algorithm as the number of (non-empty
leaf) blocks scanned.  Two cost paths are provided:

* :class:`DistanceBrowser` / :func:`knn_select` — the faithful heap-
  based incremental algorithm with a scan counter; this is what a query
  processor would run.  With a precomputed
  :class:`~repro.index.snapshot.IndexSnapshot` the browser seeds its
  frontier *flat* — one vectorized MINDIST kernel over all leaf blocks
  replaces the hierarchical descent.  The scan cost is identical either
  way: internal nodes cost nothing to pop, and the strict ``<`` return
  test means every block at MINDIST below the next returned distance
  must be scanned regardless of tie order.
* :func:`select_cost_profile` — a vectorized equivalent that returns the
  whole cost-vs-k staircase in one pass.  Because internal nodes cost
  nothing to pop, hierarchical browsing scans leaf blocks in plain
  MINDIST order, so the profile can be computed over the flat block
  list; the test suite cross-checks both paths against each other.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

import numpy as np

from repro.geometry import Point, Rect, mindist_point_rect, mindist_points_rects
from repro.geometry.kernels import mindist_argsort, mindist_rects, tie_stable_argsort
from repro.index.base import Block, SpatialIndex
from repro.index.snapshot import IndexSnapshot, as_snapshot


class DistanceBrowser:
    """Incremental nearest-neighbor browser over a hierarchical index.

    Usage::

        browser = DistanceBrowser(index, query_point)
        nearest = next(browser)            # (distance, x, y)
        more = browser.next_nearest()      # same, method form
        browser.blocks_scanned             # cost so far

    The browser is an iterator yielding points in non-decreasing
    distance order; iteration ends when the index is exhausted.

    Args:
        index: The data index.
        query: The query focal point.
        snapshot: Optional columnar summary of ``index``.  When given,
            the frontier is seeded directly with all leaf blocks in
            MINDIST order (one kernel call; a sorted list is a valid
            heap) instead of descending from the root — the snapshot's
            ``block_ids`` address ``index.blocks``, so the point data
            still comes from the index.  Scan costs are identical to
            the hierarchical path.
    """

    def __init__(
        self,
        index: SpatialIndex,
        query: Point,
        *,
        snapshot: IndexSnapshot | None = None,
    ) -> None:
        self._query = query
        self._counter = itertools.count()  # tie-breaker for heap entries
        self._block_queue: list[tuple[float, int, object]] = []
        self._tuple_queue: list[tuple[float, float, float]] = []
        self._blocks_scanned = 0
        if snapshot is not None:
            blocks = index.blocks
            if snapshot.n_blocks != len(blocks):
                raise ValueError(
                    f"snapshot summarizes {snapshot.n_blocks} blocks but the "
                    f"index holds {len(blocks)} — stale snapshot?"
                )
            order, mindists = mindist_argsort(
                (query.x, query.y), snapshot.rects, tie_order=snapshot.tie_order
            )
            # Ascending (mindist, counter, block) tuples: already a heap.
            self._block_queue = [
                (float(d), next(self._counter), blocks[int(snapshot.block_ids[i])])
                for d, i in zip(mindists, order)
            ]
        else:
            root = index.root
            heapq.heappush(
                self._block_queue,
                (mindist_point_rect(query, root.rect), next(self._counter), root),
            )

    @property
    def blocks_scanned(self) -> int:
        """Number of non-empty leaf blocks scanned so far (the cost)."""
        return self._blocks_scanned

    def __iter__(self) -> Iterator[tuple[float, float, float]]:
        return self

    def __next__(self) -> tuple[float, float, float]:
        result = self.next_nearest()
        if result is None:
            raise StopIteration
        return result

    def _scan(self, block: Block) -> None:
        self._blocks_scanned += 1
        dists = block.distances_from(self._query)
        for dist, (x, y) in zip(dists, block.points):
            heapq.heappush(self._tuple_queue, (float(dist), float(x), float(y)))

    def next_nearest(self) -> tuple[float, float, float] | None:
        """Return the next nearest ``(distance, x, y)``, or ``None``.

        Mirrors the paper's ``getNextNearest()``: the top of the
        tuples-queue is returned if its distance is strictly less than
        the MINDIST of the top of the blocks-queue; otherwise the top
        block is scanned and its tuples enqueued.
        """
        while True:
            if self._tuple_queue and (
                not self._block_queue
                or self._tuple_queue[0][0] < self._block_queue[0][0]
            ):
                return heapq.heappop(self._tuple_queue)
            if not self._block_queue:
                return None
            __, __, node = heapq.heappop(self._block_queue)
            if isinstance(node, Block):
                # Snapshot-seeded frontier entry: a leaf block directly.
                self._scan(node)
            elif node.is_leaf:
                block = node.block
                if block is None:
                    continue  # structurally-empty leaf: no block to scan
                self._scan(block)
            else:
                for child in node.children:
                    heapq.heappush(
                        self._block_queue,
                        (
                            mindist_point_rect(self._query, child.rect),
                            next(self._counter),
                            child,
                        ),
                    )


def knn_select(
    index: SpatialIndex,
    query: Point,
    k: int,
    *,
    snapshot: IndexSnapshot | None = None,
) -> tuple[np.ndarray, int]:
    """Run a k-NN-Select via distance browsing.

    Args:
        index: The data index.
        query: The query focal point.
        k: Number of neighbors to retrieve.
        snapshot: Optional precomputed summary for flat frontier
            seeding (see :class:`DistanceBrowser`).

    Returns:
        ``(neighbors, cost)`` where ``neighbors`` is a ``(m, 2)`` array
        of the k nearest points in distance order (``m < k`` if the
        index holds fewer points) and ``cost`` is the number of blocks
        scanned.

    Raises:
        ValueError: If ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    browser = DistanceBrowser(index, query, snapshot=snapshot)
    found = list(itertools.islice(browser, k))
    neighbors = np.array([(x, y) for __, x, y in found], dtype=float).reshape(-1, 2)
    return neighbors, browser.blocks_scanned


def select_cost(index: SpatialIndex, query: Point, k: int) -> int:
    """Exact distance-browsing cost of ``σ_kNN,q`` (blocks scanned)."""
    __, cost = knn_select(index, query, k)
    return cost


def select_cost_profile(
    count_index,
    blocks,
    query: Point,
    max_k: int,
    *,
    mindists_all: np.ndarray | None = None,
) -> list[tuple[int, int, int]]:
    """Compute the full cost-vs-k staircase at ``query`` in one pass.

    This is the vectorized core of Procedure 1.  Blocks are visited in
    MINDIST order from ``query``; after scanning the ``i``-th block, the
    number of points retrievable at cost ``i`` is the count of scanned
    points with distance strictly below the next block's MINDIST.

    Args:
        count_index: Block summary of the data blocks (an
            :class:`~repro.index.snapshot.IndexSnapshot`, a
            :class:`~repro.index.count_index.CountIndex`, or a raw
            index) — supplies the MINDIST ordering without touching
            points.
        blocks: The data blocks themselves, indexable by the
            summary's block order (catalog *construction* is the one
            offline step that does read points).  A columnar
            :class:`repro.perf.BlockPointsView` is also accepted and
            answers the distance gather in one batched call.
        query: The anchor point.
        max_k: Largest k the profile must cover.
        mindists_all: Optional precomputed per-block MINDIST array.
            Batching callers (:func:`repro.perf.select_cost_profiles`)
            compute the MINDIST matrix of many anchors at once; the
            values must be identical to the per-point path (and are,
            see :func:`repro.geometry.kernels.mindist_rects_batch`).

    Returns:
        A list of ``(k_start, k_end, cost)`` entries with contiguous,
        increasing k ranges.  The final entry's ``k_end`` is at least
        ``max_k`` unless the whole index holds fewer points, in which
        case the profile ends at the total point count.

    Raises:
        ValueError: If ``max_k < 1``.
    """
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    snap = as_snapshot(count_index)
    n_blocks = snap.n_blocks
    if n_blocks == 0:
        return []
    if mindists_all is None:
        mindists_all = mindist_rects((query.x, query.y), snap.rects)

    # Only the blocks nearest to the query matter, but how many is not
    # known in advance (low-density areas can force scanning far beyond
    # the first max_k points).  Select a candidate set with a partial
    # partition — far cheaper than a full argsort of every block for
    # every catalog anchor — and grow it geometrically until the
    # profile reaches max_k.
    avg_count = max(1.0, snap.total_count / n_blocks)
    candidates = min(n_blocks, int(max_k / avg_count) + 8)
    while True:
        if candidates < n_blocks:
            nearest = np.argpartition(mindists_all, candidates)[: candidates + 1]
            nearest = nearest[np.argsort(mindists_all[nearest], kind="stable")]
            order = nearest[:candidates]
            # MINDIST of the nearest block *outside* the candidate set:
            # the threshold that applies after scanning the last one.
            beyond = float(mindists_all[nearest[candidates]])
        else:
            order = np.argsort(mindists_all, kind="stable")
            beyond = np.inf
        mindists = mindists_all[order]
        prefix = order.shape[0]

        # One concatenated sort answers every per-step threshold: every
        # point in a block beyond position i lies at distance >= that
        # block's MINDIST >= the step-i threshold, so counting over the
        # whole prefix never overcounts an earlier step.  A columnar
        # block container (repro.perf.BlockPointsView) may answer the
        # gather in one batched call; the values are elementwise
        # identical to the per-block path.
        # ``order`` indexes snapshot *rows*; the summary's ``block_ids``
        # map rows to positions in ``blocks``, so a physically reordered
        # snapshot (Hilbert layout) still reads the right blocks.  The
        # profile itself is tie-invariant — equal-MINDIST blocks share
        # every threshold they could straddle — so no tie correction of
        # the row order is needed for layout parity.
        block_pos = snap.block_ids[order]
        gather = getattr(blocks, "gathered_distances", None)
        if gather is not None:
            dists = gather(block_pos, query)
        else:
            dists = np.concatenate(
                [blocks[int(i)].distances_from(query) for i in block_pos]
            )
            dists.sort(kind="stable")
        # Threshold after scanning block i is the next block's MINDIST.
        thresholds = np.empty(prefix, dtype=float)
        thresholds[: prefix - 1] = mindists[1:prefix]
        thresholds[prefix - 1] = beyond
        if gather is not None:
            # Counting without the O(n log n) distance sort: thresholds
            # are ascending (block MINDISTs in scan order), so binning
            # each distance into its first exceeding threshold and
            # prefix-summing the bin sizes yields exactly
            # #{dist < thresholds[i]} — the same integers the sorted
            # path produces via binary search.
            first_above = np.searchsorted(thresholds, dists, side="right")
            retrievable = np.cumsum(
                np.bincount(first_above, minlength=prefix + 1)[:prefix]
            )
        else:
            retrievable = np.searchsorted(dists, thresholds, side="left")
        if retrievable[-1] >= max_k or candidates >= n_blocks:
            break
        candidates = min(n_blocks, candidates * 2)

    profile: list[tuple[int, int, int]] = []
    k_reached = 0  # points already retrievable at the previous cost
    for i in range(prefix):
        r = int(retrievable[i])
        if r > k_reached:
            profile.append((k_reached + 1, r, i + 1))
            k_reached = r
        if k_reached >= max_k:
            break
    return profile


def select_cost_exact(
    count_index,
    blocks,
    query: Point,
    k: int,
) -> int:
    """Exact distance-browsing cost via the vectorized profile.

    Equivalent to :func:`select_cost` (the test suite cross-checks the
    two) but orders of magnitude faster for large k, which makes it the
    ground-truth oracle of the experiment harness.  A ``k`` exceeding
    the number of indexed points forces a scan of every block, matching
    the incremental algorithm's exhaustion behaviour.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    snap = as_snapshot(count_index)
    profile = select_cost_profile(snap, blocks, query, k)
    if not profile:
        return 0
    for k_start, k_end, cost in profile:
        if k <= k_end:
            return cost
    # Fewer than k points exist: the browser exhausts the whole index.
    return snap.n_blocks


def brute_force_knn(points: np.ndarray, query: Point, k: int) -> np.ndarray:
    """Exact k-NN by full scan; correctness oracle for the algorithms.

    Returns:
        ``(min(k, n), 2)`` array of the nearest points in distance
        order.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pts = np.asarray(points, dtype=float).reshape(-1, 2)
    if pts.shape[0] == 0:
        return np.empty((0, 2))
    dists = np.hypot(pts[:, 0] - query.x, pts[:, 1] - query.y)
    k_eff = min(k, pts.shape[0])
    idx = np.argpartition(dists, k_eff - 1)[:k_eff]
    idx = idx[np.argsort(dists[idx], kind="stable")]
    return pts[idx]


class SnapshotBlockStream:
    """Resumable MINDIST-ordered block stream over one snapshot.

    The per-shard primitive of the serving tier's cross-shard k-NN
    merge: a shard worker walks its sub-snapshot's blocks in the exact
    (MINDIST, ascending block id) order the global distance browser
    would visit them, but *incrementally* — the coordinator pulls a
    prefix, merges it against the other shards' streams, and resumes
    from a plain integer cursor only if this shard's :meth:`bound`
    is still below the running k-th distance.  The stream is stateless
    across pulls (the cursor is the whole state), so a respawned worker
    incarnation resumes a stream mid-query without any handshake.

    Entry floats are bit-identical to the batched executor's: block
    order comes from the same :func:`~repro.geometry.mindist_points_rects`
    kernel + stable tie sort, and each block's stop-test ``threshold``
    is recomputed with the scalar
    :func:`~repro.geometry.mindist_point_rect` — exactly the float the
    heap browser compares gathered distances against.

    Args:
        snapshot: The (sub-)snapshot to stream; its ``block_ids`` are
            reported back with every entry so a cross-shard consumer
            can merge on the global ``(MINDIST, block id)`` key.
        query: The focal point.
    """

    def __init__(self, snapshot: IndexSnapshot, query: Point) -> None:
        self._snapshot = snapshot
        self._query = query
        n = snapshot.n_blocks
        if n == 0:
            self._order = np.empty(0, dtype=np.int64)
            self._mindists = np.empty(0, dtype=float)
        else:
            tableau = mindist_points_rects(
                np.array([[query.x, query.y]], dtype=float), snapshot.rects
            )
            order = tie_stable_argsort(tableau, snapshot.tie_order)[0]
            self._order = order
            self._mindists = tableau[0][order]

    @property
    def n_blocks(self) -> int:
        """Total blocks the stream can ever emit."""
        return int(self._order.shape[0])

    def entry(self, rank: int) -> tuple[float, int, float, int]:
        """The stream's ``rank``-th block as ``(mindist, block_id, threshold, row)``.

        ``row`` is the block's physical row in the snapshot (for
        pairing with per-block row/point arrays); ``threshold`` is the
        scalar-kernel MINDIST used by the browser's stop test.
        """
        row = int(self._order[rank])
        rect = Rect(*self._snapshot.rects[row])
        return (
            float(self._mindists[rank]),
            int(self._snapshot.block_ids[row]),
            mindist_point_rect(self._query, rect),
            row,
        )

    def bound(self, cursor: int) -> tuple[float, int, float] | None:
        """Lower bound of everything not yet emitted, or ``None`` if spent.

        The next block's ``(mindist, block_id, threshold)``: no
        unemitted row of this stream can lie closer than ``threshold``,
        and no unemitted block sorts before ``(mindist, block_id)`` in
        the global scan order.
        """
        if cursor >= self.n_blocks:
            return None
        mindist, block_id, threshold, __ = self.entry(cursor)
        return (mindist, block_id, threshold)

    def take(
        self,
        cursor: int,
        *,
        min_points: int = 0,
        min_mindist: float = -np.inf,
        counts: np.ndarray | None = None,
    ) -> tuple[list[tuple[float, int, float, int]], int]:
        """Emit blocks from ``cursor`` until both stop conditions hold.

        Emission continues while the emitted blocks hold fewer than
        ``min_points`` rows *or* the next block's MINDIST is strictly
        below ``min_mindist`` — the two pull shapes of the merge
        protocol (gather-a-k-prefix, and drain-below-a-dead-shard's
        bound) — and stops at exhaustion regardless.

        Returns:
            ``(entries, new_cursor)`` with entries as in :meth:`entry`.
        """
        if counts is None:
            counts = self._snapshot.counts
        entries: list[tuple[float, int, float, int]] = []
        gathered = 0
        n = self.n_blocks
        while cursor < n:
            if gathered >= min_points and self._mindists[cursor] >= min_mindist:
                break
            entry = self.entry(cursor)
            entries.append(entry)
            gathered += int(counts[entry[3]])
            cursor += 1
        return entries, cursor
