"""k-nearest-neighbor query processing algorithms.

These are the *actual* operators whose cost the paper estimates; the
reproduction implements them in full so that every estimator can be
validated against ground truth:

* :mod:`~repro.knn.distance_browsing` — Hjaltason & Samet's incremental
  distance browsing, the I/O-optimal state of the art for k-NN-Select,
  plus its exact block-scan cost and the full cost-vs-k staircase
  profile (the machinery behind Procedure 1).
* :mod:`~repro.knn.depth_first` — Roussopoulos et al.'s depth-first
  branch-and-bound k-NN, the suboptimal comparator of Section 2.
* :mod:`~repro.knn.locality` — locality computation of Sankaranarayanan
  et al. and its size-vs-k staircase profile (Procedure 2's semantics).
* :mod:`~repro.knn.knn_join` — the locality-based block-by-block
  k-NN-Join and a naive per-point join used as a correctness oracle.
"""

from repro.knn.distance_browsing import (
    DistanceBrowser,
    knn_select,
    select_cost,
    select_cost_exact,
    select_cost_profile,
    brute_force_knn,
)
from repro.knn.depth_first import depth_first_knn
from repro.knn.locality import (
    locality_block_indices,
    locality_coverage_radii,
    locality_size,
    locality_size_profile,
    locality_sizes,
)
from repro.knn.knn_join import (
    knn_join,
    knn_join_cost,
    naive_knn_join,
)

__all__ = [
    "DistanceBrowser",
    "knn_select",
    "select_cost",
    "select_cost_exact",
    "select_cost_profile",
    "brute_force_knn",
    "depth_first_knn",
    "locality_block_indices",
    "locality_coverage_radii",
    "locality_size",
    "locality_size_profile",
    "locality_sizes",
    "knn_join",
    "knn_join_cost",
    "naive_knn_join",
]
