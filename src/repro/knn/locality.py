"""Locality computation for locality-based k-NN-Join processing.

Section 4 (after Sankaranarayanan et al.): the *locality* of an outer
block ``b_o`` is the minimal MINDIST-prefix of inner blocks guaranteed
to contain the k nearest neighbors of *every* point in ``b_o``.  It is
computed by scanning inner blocks in MINDIST order from ``b_o``,
accumulating their counts until the sum reaches ``k``, marking the
highest MAXDIST ``M`` among the accumulated blocks, and continuing the
scan until a block with MINDIST greater than ``M`` appears.  Every
encountered block (MINDIST <= M) belongs to the locality.

The join cost the paper estimates is the total number of blocks scanned:
the sum of locality sizes over all outer blocks.

:func:`locality_size_profile` computes the locality-size-vs-k staircase
in one pass — the semantics of the paper's Procedure 2 (see DESIGN.md §5
for the pseudocode discrepancy we resolve in favour of the worked
example): with inner blocks ``b_1..b_n`` in MINDIST order, cumulative
counts ``S_i`` and running maxima ``M_i = max(MAXDIST(b_1..b_i))``, the
locality size for every ``k`` in ``[S_{i-1}+1, S_i]`` is
``#{b : MINDIST(b) <= M_i}``; consecutive equal-cost ranges are merged
(the paper's redundant-entry elimination).

Zero-count-block semantics
--------------------------
:func:`locality_block_indices` (the per-k query path) and
:func:`locality_size_profile` (the all-k staircase path) must agree for
every ``k`` — the profile is the Catalog-Merge/Virtual-Grid
preprocessing input, while the per-k path is the oracle the tests
compare against.  The one place the two formulations *could* diverge is
an inner block holding zero points: the per-k path marks ``M`` at the
first prefix whose cumulative count reaches ``k`` (a zero-count block
never advances the cumulative sum but could still raise the running
MAXDIST), whereas the staircase path emits one range per *count-bearing*
prefix and skips ranges a zero-count block would terminate.  By
construction this cannot happen here: :class:`~repro.index.count_index.
CountIndex` rejects non-positive block counts (the Count-Index only
tracks non-empty blocks, per DESIGN.md §5), so every prefix strictly
increases the cumulative count and the two paths are equal for every
``k`` in ``[1, total inner points]`` — property-tested in
``tests/test_perf_parallel.py`` (``test_locality_profile_matches_per_k``).
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Rect
from repro.index.count_index import CountIndex


def locality_block_indices(inner: CountIndex, outer_rect: Rect, k: int) -> np.ndarray:
    """Return the inner-block indices forming the locality of ``outer_rect``.

    Args:
        inner: Count-Index over the inner relation's blocks.
        outer_rect: Extent of the outer block.
        k: The join's k.

    Returns:
        Block indices in MINDIST order.  When the inner relation holds
        fewer than ``k`` points, every inner block is in the locality.

    Raises:
        ValueError: If ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if inner.n_blocks == 0:
        return np.empty(0, dtype=np.int64)
    order, mindists = inner.mindist_order_from_rect(outer_rect)
    counts = inner.counts[order]
    cumulative = np.cumsum(counts)
    first_enough = int(np.searchsorted(cumulative, k, side="left"))
    if first_enough >= order.shape[0]:
        return order  # fewer than k inner points: everything qualifies
    maxdists = inner.maxdist_from_rect(outer_rect)[order]
    marked = float(maxdists[: first_enough + 1].max())
    # Scanning continues until a block of MINDIST > marked appears, so
    # the locality is the prefix with MINDIST <= marked.
    size = int(np.searchsorted(mindists, marked, side="right"))
    return order[:size]


def locality_size(inner: CountIndex, outer_rect: Rect, k: int) -> int:
    """Number of inner blocks in the locality of ``outer_rect`` for ``k``."""
    return int(locality_block_indices(inner, outer_rect, k).shape[0])


def locality_size_profile(
    inner: CountIndex, outer_rect: Rect, max_k: int
) -> list[tuple[int, int, int]]:
    """Locality-size-vs-k staircase for one outer block (Procedure 2).

    Args:
        inner: Count-Index over the inner relation's blocks.
        outer_rect: Extent of the outer block.
        max_k: Largest k the profile must cover.

    Returns:
        Contiguous ``(k_start, k_end, locality_size)`` entries covering
        ``[1, min(max_k, total inner points)]``, with consecutive
        equal-size entries merged.

    Raises:
        ValueError: If ``max_k < 1``.
    """
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    if inner.n_blocks == 0:
        return []
    order, mindists = inner.mindist_order_from_rect(outer_rect)
    counts = inner.counts[order]
    maxdists = inner.maxdist_from_rect(outer_rect)[order]
    cumulative = np.cumsum(counts)
    running_max = np.maximum.accumulate(maxdists)
    # For the prefix ending at block i, the locality size is the number
    # of blocks with MINDIST <= running_max[i]; mindists is sorted so a
    # single vectorized searchsorted covers all prefixes at once.
    sizes = np.searchsorted(mindists, running_max, side="right")

    profile: list[tuple[int, int, int]] = []
    k_reached = 0
    for i in range(order.shape[0]):
        k_end = int(cumulative[i])
        if k_end <= k_reached:
            continue  # can't happen with positive counts; guard anyway
        size = int(sizes[i])
        if profile and profile[-1][2] == size:
            # Redundant-entry elimination: extend the previous range.
            k_start, __, __ = profile[-1]
            profile[-1] = (k_start, k_end, size)
        else:
            profile.append((k_reached + 1, k_end, size))
        k_reached = k_end
        if k_reached >= max_k:
            break
    return profile
