"""Locality computation for locality-based k-NN-Join processing.

Section 4 (after Sankaranarayanan et al.): the *locality* of an outer
block ``b_o`` is the minimal MINDIST-prefix of inner blocks guaranteed
to contain the k nearest neighbors of *every* point in ``b_o``.  It is
computed by scanning inner blocks in MINDIST order from ``b_o``,
accumulating their counts until the sum reaches ``k``, marking the
highest MAXDIST ``M`` among the accumulated blocks, and continuing the
scan until a block with MINDIST greater than ``M`` appears.  Every
encountered block (MINDIST <= M) belongs to the locality.

The join cost the paper estimates is the total number of blocks scanned:
the sum of locality sizes over all outer blocks.

All functions here consume the columnar block summary — an
:class:`~repro.index.snapshot.IndexSnapshot`, or anything
:func:`~repro.index.snapshot.as_snapshot` can normalize (a
:class:`~repro.index.count_index.CountIndex`, a raw
:class:`~repro.index.base.SpatialIndex`) — and compute with the
vectorized :mod:`repro.geometry.kernels`.  The outer anchor may be a
:class:`~repro.geometry.rect.Rect` or bare ``(x_min, y_min, x_max,
y_max)`` bounds.

:func:`locality_size_profile` computes the locality-size-vs-k staircase
in one pass — the semantics of the paper's Procedure 2 (see DESIGN.md §5
for the pseudocode discrepancy we resolve in favour of the worked
example): with inner blocks ``b_1..b_n`` in MINDIST order, cumulative
counts ``S_i`` and running maxima ``M_i = max(MAXDIST(b_1..b_i))``, the
locality size for every ``k`` in ``[S_{i-1}+1, S_i]`` is
``#{b : MINDIST(b) <= M_i}``; consecutive equal-cost ranges are merged
(the paper's redundant-entry elimination).

Zero-count-block semantics
--------------------------
:func:`locality_block_indices` (the per-k query path) and
:func:`locality_size_profile` (the all-k staircase path) must agree for
every ``k`` — the profile is the Catalog-Merge/Virtual-Grid
preprocessing input, while the per-k path is the oracle the tests
compare against.  With a :class:`~repro.index.count_index.CountIndex`
inner, zero-count blocks cannot occur (the Count-Index only tracks
non-empty blocks, per DESIGN.md §5).  A bare snapshot *may* carry
zero-count blocks, and both paths handle them identically: a zero-count
block never advances the cumulative sum, but while it sits inside the
accumulating prefix its MAXDIST still raises the running mark ``M``
(the per-k path takes the max over the whole prefix up to the first
count-reaching block; the staircase path folds it into the running
maximum and simply emits no k-range of its own).  The agreement is
property-tested in ``tests/test_perf_parallel.py``
(``test_locality_profile_matches_per_k``) and the zero-count edge case
in ``tests/test_snapshot_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.kernels import (
    as_anchor,
    maxdist_rects,
    maxdist_rects_batch,
    mindist_argsort,
    mindist_rects_batch,
    tie_stable_argsort,
)
from repro.index.snapshot import IndexSnapshot, as_snapshot


def _outer_anchor(outer_rect) -> np.ndarray:
    """Normalize the outer block to ``(x_min, y_min, x_max, y_max)``."""
    anchor = as_anchor(outer_rect)
    if anchor.shape[0] != 4:
        raise ValueError(
            f"outer block must be rect bounds (4,), got shape {anchor.shape}"
        )
    return anchor


def locality_block_indices(inner, outer_rect, k: int) -> np.ndarray:
    """Return the inner-block indices forming the locality of ``outer_rect``.

    Args:
        inner: Block summary of the inner relation — an
            :class:`~repro.index.snapshot.IndexSnapshot` or anything
            :func:`~repro.index.snapshot.as_snapshot` accepts.
        outer_rect: Extent of the outer block (``Rect`` or bounds).
        k: The join's k.

    Returns:
        Block indices in MINDIST order, expressed as positions in the
        underlying index's block list (the snapshot's ``block_ids``), so
        the result is independent of the snapshot's physical layout.
        When the inner relation holds fewer than ``k`` points, every
        inner block is in the locality.

    Raises:
        ValueError: If ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    snap = as_snapshot(inner)
    if snap.n_blocks == 0:
        return np.empty(0, dtype=np.int64)
    anchor = _outer_anchor(outer_rect)
    order, mindists = mindist_argsort(anchor, snap.rects, tie_order=snap.tie_order)
    counts = snap.counts[order]
    cumulative = np.cumsum(counts)
    first_enough = int(np.searchsorted(cumulative, k, side="left"))
    if first_enough >= order.shape[0]:
        return snap.block_ids[order]  # fewer than k inner points
    maxdists = maxdist_rects(anchor, snap.rects)[order]
    marked = float(maxdists[: first_enough + 1].max())
    # Scanning continues until a block of MINDIST > marked appears, so
    # the locality is the prefix with MINDIST <= marked.
    size = int(np.searchsorted(mindists, marked, side="right"))
    return snap.block_ids[order[:size]]


def locality_size(inner, outer_rect, k: int) -> int:
    """Number of inner blocks in the locality of ``outer_rect`` for ``k``."""
    return int(locality_block_indices(inner, outer_rect, k).shape[0])


def locality_sizes(inner, outer_rects, k: int) -> np.ndarray:
    """Locality sizes of many outer blocks against one inner summary.

    The batched sibling of :func:`locality_size`: one ``(m, n)``
    MINDIST/MAXDIST tableau answers every outer block at once, row-wise
    identical to the per-rect path (``mindist_rects_batch`` applies the
    same ufunc chain as ``mindist_rects``).

    Args:
        inner: Block summary of the inner relation.
        outer_rects: ``(m, 4)`` array of outer block bounds.
        k: The join's k.

    Returns:
        ``(m,)`` int64 array of locality sizes.

    Raises:
        ValueError: If ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    snap = as_snapshot(inner)
    outer_rects = np.asarray(outer_rects, dtype=float).reshape(-1, 4)
    m = outer_rects.shape[0]
    n = snap.n_blocks
    if n == 0 or m == 0:
        return np.zeros(m, dtype=np.int64)
    mindists = mindist_rects_batch(outer_rects, snap.rects)
    maxdists = maxdist_rects_batch(outer_rects, snap.rects)
    order = tie_stable_argsort(mindists, snap.tie_order)
    rows = np.arange(m)[:, None]
    sorted_min = np.take_along_axis(mindists, order, axis=1)
    cum_counts = np.cumsum(snap.counts[order], axis=1)
    running_max = np.maximum.accumulate(
        np.take_along_axis(maxdists, order, axis=1), axis=1
    )
    # Per row: index of the first prefix whose cumulative count reaches
    # k (== searchsorted-left on the non-decreasing cumulative sums).
    first_enough = (cum_counts < k).sum(axis=1)
    sizes = np.full(m, n, dtype=np.int64)  # < k inner points: everything
    reachable = first_enough < n
    if np.any(reachable):
        marked = running_max[rows[reachable, 0], first_enough[reachable]]
        # Prefix with MINDIST <= marked (== searchsorted-right on the
        # sorted row), counted with one comparison per cell.
        sizes[reachable] = (
            sorted_min[reachable] <= marked[:, None]
        ).sum(axis=1)
    return sizes


def locality_coverage_radii(inner, outer_rects, max_k: int) -> np.ndarray:
    """Mutation-visibility radius of each outer block's locality profile.

    For one outer block, the locality staircase up to ``max_k`` is
    computed from MINDIST-order prefixes ending no later than the first
    block whose cumulative count reaches ``max_k``; every quantity it
    reads (prefix membership, running-MAXDIST marks, and the
    ``MINDIST <= mark`` prefix counts) concerns only inner blocks with
    ``MINDIST <= C`` where ``C`` is the running-MAXDIST at that first
    count-reaching block.  Therefore mutations confined to regions with
    ``MINDIST(outer, region) > C`` leave
    :func:`locality_size_profile` — and any catalog derived from it —
    bit-for-bit unchanged.  The maintained join estimators use this to
    skip re-deriving temporaries whose coverage disc missed every dirty
    region.

    Args:
        inner: Block summary of the inner relation.
        outer_rects: ``(m, 4)`` array of outer block bounds.
        max_k: Largest k the derived profiles must cover.

    Returns:
        ``(m,)`` float array of radii; ``inf`` where the inner relation
        holds fewer than ``max_k`` points (every block participates, so
        any mutation anywhere may be visible).

    Raises:
        ValueError: If ``max_k < 1``.
    """
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    snap = as_snapshot(inner)
    outer_rects = np.asarray(outer_rects, dtype=float).reshape(-1, 4)
    m = outer_rects.shape[0]
    n = snap.n_blocks
    out = np.full(m, np.inf, dtype=float)
    if n == 0 or m == 0:
        return out
    # Chunk the (m, n) tableau so memory stays bounded for large fleets
    # of outer blocks (mirrors the slab size used in perf.parallel).
    slab = 256
    for start in range(0, m, slab):
        chunk = outer_rects[start : start + slab]
        mindists = mindist_rects_batch(chunk, snap.rects)
        maxdists = maxdist_rects_batch(chunk, snap.rects)
        order = tie_stable_argsort(mindists, snap.tie_order)
        cum_counts = np.cumsum(snap.counts[order], axis=1)
        running_max = np.maximum.accumulate(
            np.take_along_axis(maxdists, order, axis=1), axis=1
        )
        first_enough = (cum_counts < max_k).sum(axis=1)
        reachable = first_enough < n
        if np.any(reachable):
            rows = np.nonzero(reachable)[0]
            out[start + rows] = running_max[rows, first_enough[rows]]
    return out


def locality_size_profile(
    inner, outer_rect, max_k: int
) -> list[tuple[int, int, int]]:
    """Locality-size-vs-k staircase for one outer block (Procedure 2).

    Args:
        inner: Block summary of the inner relation.
        outer_rect: Extent of the outer block (``Rect`` or bounds).
        max_k: Largest k the profile must cover.

    Returns:
        Contiguous ``(k_start, k_end, locality_size)`` entries covering
        ``[1, min(max_k, total inner points)]``, with consecutive
        equal-size entries merged.

    Raises:
        ValueError: If ``max_k < 1``.
    """
    if max_k < 1:
        raise ValueError(f"max_k must be >= 1, got {max_k}")
    snap = as_snapshot(inner)
    if snap.n_blocks == 0:
        return []
    anchor = _outer_anchor(outer_rect)
    order, mindists = mindist_argsort(anchor, snap.rects, tie_order=snap.tie_order)
    counts = snap.counts[order]
    maxdists = maxdist_rects(anchor, snap.rects)[order]
    cumulative = np.cumsum(counts)
    running_max = np.maximum.accumulate(maxdists)
    # For the prefix ending at block i, the locality size is the number
    # of blocks with MINDIST <= running_max[i]; mindists is sorted so a
    # single vectorized searchsorted covers all prefixes at once.
    sizes = np.searchsorted(mindists, running_max, side="right")

    profile: list[tuple[int, int, int]] = []
    k_reached = 0
    for i in range(order.shape[0]):
        k_end = int(cumulative[i])
        if k_end <= k_reached:
            continue  # zero-count block: raises the mark, adds no range
        size = int(sizes[i])
        if profile and profile[-1][2] == size:
            # Redundant-entry elimination: extend the previous range.
            k_start, __, __ = profile[-1]
            profile[-1] = (k_start, k_end, size)
        else:
            profile.append((k_reached + 1, k_end, size))
        k_reached = k_end
        if k_reached >= max_k:
            break
    return profile
