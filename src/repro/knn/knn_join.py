"""The k-NN-Join operator.

``R ⋉_kNN S`` pairs every point of the outer relation ``R`` with its k
nearest points of the inner relation ``S``.  The state-of-the-art
processing strategy (Section 2) is *locality-based* and block-by-block:
for each outer block, compute its locality in the inner relation once,
then answer every outer point's k-NN by scanning only the locality.

The cost model of the paper — and therefore the ground truth of every
join estimator — is the total number of inner blocks scanned, which is
the sum of locality sizes across outer blocks
(:func:`knn_join_cost`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.index.base import SpatialIndex
from repro.index.count_index import CountIndex
from repro.knn.locality import locality_block_indices


def knn_join_cost(outer: SpatialIndex, inner: SpatialIndex, k: int) -> int:
    """Exact locality-join cost: total inner blocks scanned.

    Args:
        outer: Index of the outer relation ``R``.
        inner: Index of the inner relation ``S``.
        k: Number of neighbors per outer point.

    Returns:
        ``sum over outer blocks of |locality(block, k)|``.
    """
    inner_counts = CountIndex.from_index(inner)
    return sum(
        int(locality_block_indices(inner_counts, block.rect, k).shape[0])
        for block in outer.blocks
    )


def knn_join(
    outer: SpatialIndex, inner: SpatialIndex, k: int
) -> tuple[Iterator[tuple[np.ndarray, np.ndarray]], "JoinStats"]:
    """Run a locality-based k-NN-Join.

    Args:
        outer: Index of the outer relation ``R``.
        inner: Index of the inner relation ``S``.
        k: Number of neighbors per outer point.

    Returns:
        ``(pairs, stats)``: ``pairs`` lazily yields one
        ``(outer_points, neighbor_arrays)`` tuple per outer block where
        ``neighbor_arrays`` is an ``(n_outer, k_eff, 2)`` array of each
        outer point's nearest inner points in distance order; ``stats``
        accumulates the block-scan cost as the iterator is consumed.

    Raises:
        ValueError: If ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    inner_counts = CountIndex.from_index(inner)
    stats = JoinStats()

    def generate() -> Iterator[tuple[np.ndarray, np.ndarray]]:
        for block in outer.blocks:
            locality = locality_block_indices(inner_counts, block.rect, k)
            stats.blocks_scanned += int(locality.shape[0])
            stats.outer_blocks_processed += 1
            candidate_arrays = [inner.blocks[i].points for i in locality]
            if candidate_arrays:
                candidates = np.concatenate(candidate_arrays, axis=0)
            else:
                candidates = np.empty((0, 2))
            yield block.points, _batch_knn(block.points, candidates, k)

    return generate(), stats


class JoinStats:
    """Mutable accumulator for join execution statistics."""

    def __init__(self) -> None:
        self.blocks_scanned = 0
        self.outer_blocks_processed = 0

    def __repr__(self) -> str:
        return (
            f"JoinStats(blocks_scanned={self.blocks_scanned}, "
            f"outer_blocks_processed={self.outer_blocks_processed})"
        )


def naive_knn_join(
    outer_points: np.ndarray, inner_points: np.ndarray, k: int
) -> np.ndarray:
    """Brute-force k-NN-Join; correctness oracle for the locality join.

    Args:
        outer_points: ``(n, 2)`` outer point array.
        inner_points: ``(m, 2)`` inner point array.
        k: Number of neighbors per outer point.

    Returns:
        ``(n, min(k, m), 2)`` array of each outer point's nearest inner
        points in distance order.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    outer_points = np.asarray(outer_points, dtype=float).reshape(-1, 2)
    inner_points = np.asarray(inner_points, dtype=float).reshape(-1, 2)
    return _batch_knn(outer_points, inner_points, k)


def _batch_knn(queries: np.ndarray, candidates: np.ndarray, k: int) -> np.ndarray:
    """Vectorized k-NN of every query against a shared candidate set."""
    n = queries.shape[0]
    m = candidates.shape[0]
    k_eff = min(k, m)
    if n == 0 or k_eff == 0:
        return np.empty((n, 0, 2))
    dx = queries[:, 0, None] - candidates[None, :, 0]
    dy = queries[:, 1, None] - candidates[None, :, 1]
    dists = np.hypot(dx, dy)
    if k_eff < m:
        top = np.argpartition(dists, k_eff - 1, axis=1)[:, :k_eff]
    else:
        top = np.broadcast_to(np.arange(m), (n, m)).copy()
    row_dists = np.take_along_axis(dists, top, axis=1)
    order = np.argsort(row_dists, axis=1, kind="stable")
    sorted_idx = np.take_along_axis(top, order, axis=1)
    return candidates[sorted_idx]
